"""Backfilling the results database from committed artifacts.

``crayfish store import`` seeds history from what the repository already
ships: the BENCH_metrics.json telemetry baseline, the golden matrix and
scale-out regression files, and any result exports under
``benchmarks/results/``. Imports are idempotent — every source file is
registered by (path, sha256) in the ``artifacts`` table and an unchanged
file never imports twice — and imported rows carry ``source`` tags so
live measurements stay distinguishable from backfill.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import typing

from repro.store.db import ResultStore
from repro.store.record import parse_label, run_row_from_record


@dataclasses.dataclass
class ImportReport:
    """What one import pass did."""

    runs: int = 0
    series: int = 0
    artifacts: int = 0
    skipped: list[str] = dataclasses.field(default_factory=list)

    def merge(self, other: "ImportReport") -> None:
        self.runs += other.runs
        self.series += other.series
        self.artifacts += other.artifacts
        self.skipped.extend(other.skipped)

    def summary(self) -> str:
        parts = [
            f"{self.runs} run(s)",
            f"{self.series} series summarie(s)",
            f"{self.artifacts} artifact(s) registered",
        ]
        if self.skipped:
            parts.append(f"{len(self.skipped)} unchanged file(s) skipped")
        return ", ".join(parts)


def _sha256(path: pathlib.Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _claim(
    store: ResultStore, path: pathlib.Path, kind: str, report: ImportReport
) -> bool:
    """Register ``path`` as imported; False when this content already was."""
    if store.record_artifact(str(path), _sha256(path), kind):
        report.artifacts += 1
        return True
    report.skipped.append(str(path))
    return False


def bench_slot(label: str) -> str:
    """Stable pseudo-slot for one bench-telemetry label.

    Bench entries carry no full config, so they cannot be content-
    addressed like live runs; the label-derived slot keeps the imported
    baseline and every later live bench recording of the same engine in
    one longitudinal series for ``crayfish trend``/``regress``.
    """
    return hashlib.sha256(f"bench:{label}".encode()).hexdigest()


def record_bench_entries(
    store: ResultStore,
    entries: dict[str, dict],
    kind: str = "bench",
    source: str = "bench",
    origin: dict | None = None,
) -> ImportReport:
    """Record label → telemetry-summary entries (the BENCH_metrics shape).

    Each entry is one engine's metrics-on profile: headline throughput/
    latency plus per-series summaries, as produced by
    ``benchmarks.bench_util.telemetry_summary``. Shared by the
    BENCH_metrics importer and the live benchmark recorder so both feed
    the same slots.
    """
    report = ImportReport()
    for label in sorted(entries):
        summary = entries[label]
        try:
            sps, serving, model, nodes = parse_label(label)
        except ValueError:
            report.skipped.append(label)
            continue
        series = summary.get("series") or {}
        record = {
            "config": {"sps": sps, "serving": serving, "model": model},
            "throughput": summary.get("throughput"),
            "latency": {
                "mean": summary.get("latency_mean"),
                "p95": summary.get("latency_p95"),
            },
            "completed": summary.get("completed"),
        }
        if origin:
            record["import"] = dict(origin, label=label)
        row = run_row_from_record(
            record,
            kind=kind,
            source=source,
            fingerprint=store.fingerprint,
            git_rev=store.git_rev,
            recorded_at=store.clock(),
            label=label,
        )
        row = dataclasses.replace(row, slot_id=bench_slot(label), nodes=nodes)
        store._insert_row(row, series=series)
        report.runs += 1
        report.series += len(series)
    return report


def kernel_label(workload: str) -> str:
    """Config-style label for one kernel-bench workload.

    Three segments so ``parse_label``/history filters treat kernel
    entries like any other run: pseudo-engine ``kernel``, pseudo-serving
    ``sim``, workload as the model position.
    """
    return f"kernel/sim/{workload}"


def record_kernel_entries(
    store: ResultStore,
    entries: dict[str, dict],
    source: str = "kernel-bench",
    origin: dict | None = None,
) -> ImportReport:
    """Record workload → events/sec entries (the BENCH_kernel shape).

    Each entry is one kernel microbenchmark workload as produced by
    :func:`repro.simul.bench.run_kernel_bench`; the current calendar-
    scheduler events/sec lands in the ``throughput`` column so the
    ``crayfish trend``/``regress`` machinery applies unchanged. Shared
    by the BENCH_kernel importer and the live ``crayfish kernel-bench``
    recorder so both feed the same longitudinal slots.
    """
    report = ImportReport()
    for workload in sorted(entries):
        entry = entries[workload]
        label = kernel_label(workload)
        current = entry.get("current") or {}
        record = {
            "config": {"sps": "kernel", "serving": "sim", "model": workload},
            "throughput": current.get("events_per_sec"),
            "completed": entry.get("events"),
            "kernel": entry,
        }
        if origin:
            record["import"] = dict(origin, label=label)
        row = run_row_from_record(
            record,
            kind="kernel",
            source=source,
            fingerprint=store.fingerprint,
            git_rev=store.git_rev,
            recorded_at=store.clock(),
            label=label,
        )
        row = dataclasses.replace(row, slot_id=bench_slot(label))
        store._insert_row(row)
        report.runs += 1
    return report


def import_kernel_bench(
    store: ResultStore, path: str | pathlib.Path
) -> ImportReport:
    """Backfill the BENCH_kernel.json events/sec trajectory."""
    report = ImportReport()
    path = pathlib.Path(path)
    if not path.is_file():
        return report
    if not _claim(store, path, "bench_kernel", report):
        return report
    payload = json.loads(path.read_text())
    report.merge(
        record_kernel_entries(
            store,
            payload,
            source="import:bench_kernel",
            origin={"source": str(path)},
        )
    )
    return report


def import_bench_metrics(
    store: ResultStore, path: str | pathlib.Path
) -> ImportReport:
    """Backfill the BENCH_metrics.json telemetry baseline."""
    report = ImportReport()
    path = pathlib.Path(path)
    if not path.is_file():
        return report
    if not _claim(store, path, "bench_metrics", report):
        return report
    payload = json.loads(path.read_text())
    report.merge(
        record_bench_entries(
            store,
            payload,
            source="import:bench_metrics",
            origin={"source": str(path)},
        )
    )
    return report


def _import_golden(
    store: ResultStore,
    path: pathlib.Path,
    kind: str,
    source: str,
    report: ImportReport,
) -> None:
    """Shared shape of matrix_golden.json / scaleout_golden.json.

    The golden documents store the canonical base config, the grid, and
    per-point per-seed aggregate records. Overrides that are plain
    config fields merge into the base config (giving a true
    content-addressed slot); presentation-only overrides (e.g. the
    scale-out file's ``cluster: "3n"`` shorthand) fold into the label
    and a derived pseudo-slot instead.
    """
    if not _claim(store, path, kind, report):
        return
    payload = json.loads(path.read_text())
    base = payload.get("base") or {}
    # Fields whose golden overrides are display shorthands (the
    # scale-out file writes ``cluster: "3n"``), not mergeable values.
    structured = {"cluster", "population", "fault_plan", "resilience"}
    for point in payload.get("points", ()):
        overrides = point.get("overrides") or {}
        config = dict(base)
        label_bits = []
        mergeable = True
        nodes = None
        for key in sorted(overrides):
            value = overrides[key]
            if key in base and key not in structured:
                config[key] = value
            else:
                mergeable = False
                if (
                    key == "cluster"
                    and isinstance(value, str)
                    and value.endswith("n")
                    and value[:-1].isdigit()
                ):
                    nodes = int(value[:-1])
            label_bits.append(f"{key}={value}")
        for run in point.get("runs", ()):
            record = {
                "config": config,
                "seed": run.get("seed"),
                "throughput": run.get("throughput"),
                "latency": run.get("latency") or {},
                "completed": run.get("completed"),
                "produced": run.get("produced"),
                "duplicates": run.get("duplicates"),
                "inference_requests": run.get("inference_requests"),
                "import": {"source": str(path), "overrides": overrides},
            }
            row = run_row_from_record(
                record,
                kind="golden",
                source=source,
                fingerprint=store.fingerprint,
                git_rev=store.git_rev,
                recorded_at=store.clock(),
            )
            if not mergeable:
                slot = hashlib.sha256(
                    f"import:{kind}:{' '.join(label_bits)}"
                    f":seed={run.get('seed')}".encode()
                ).hexdigest()
                row = dataclasses.replace(
                    row,
                    slot_id=slot,
                    label=f"{row.label} [{' '.join(label_bits)}]",
                    nodes=nodes if nodes is not None else row.nodes,
                )
            store._insert_row(row)
            report.runs += 1


def import_matrix_golden(
    store: ResultStore, path: str | pathlib.Path
) -> ImportReport:
    report = ImportReport()
    path = pathlib.Path(path)
    if path.is_file():
        _import_golden(
            store, path, "matrix_golden", "import:matrix_golden", report
        )
    return report


def import_scaleout_golden(
    store: ResultStore, path: str | pathlib.Path
) -> ImportReport:
    report = ImportReport()
    path = pathlib.Path(path)
    if path.is_file():
        _import_golden(
            store, path, "scaleout_golden", "import:scaleout_golden", report
        )
    return report


def import_results_dir(
    store: ResultStore, root: str | pathlib.Path
) -> ImportReport:
    """Register benchmarks/results artifacts; import any record exports.

    The committed ``.txt`` tables are provenance (formatted for humans,
    registered by digest so history knows they existed); ``.jsonl``
    record exports — e.g. a ``crayfish matrix --jsonl`` dropped there —
    import as full runs.
    """
    report = ImportReport()
    root = pathlib.Path(root)
    if not root.is_dir():
        return report
    for path in sorted(root.iterdir()):
        if path.suffix == ".txt":
            _claim(store, path, "result_table", report)
        elif path.suffix == ".jsonl":
            if not _claim(store, path, "result_records", report):
                continue
            from repro.core.results_io import load_records_jsonl

            for record in load_records_jsonl(str(path)):
                if "config" not in record:
                    continue
                store.record_run(
                    record, kind="matrix", source=f"import:{path.name}"
                )
                report.runs += 1
    return report


def import_all(
    store: ResultStore,
    repo_root: str | pathlib.Path = ".",
    hook: typing.Callable[[str, ImportReport], None] | None = None,
) -> ImportReport:
    """Backfill every known artifact under ``repo_root``."""
    root = pathlib.Path(repo_root)
    report = ImportReport()
    steps: tuple[tuple[str, typing.Callable[[], ImportReport]], ...] = (
        (
            "BENCH_metrics.json",
            lambda: import_bench_metrics(store, root / "BENCH_metrics.json"),
        ),
        (
            "BENCH_kernel.json",
            lambda: import_kernel_bench(store, root / "BENCH_kernel.json"),
        ),
        (
            "tests/golden/matrix_golden.json",
            lambda: import_matrix_golden(
                store, root / "tests" / "golden" / "matrix_golden.json"
            ),
        ),
        (
            "tests/golden/scaleout_golden.json",
            lambda: import_scaleout_golden(
                store, root / "tests" / "golden" / "scaleout_golden.json"
            ),
        ),
        (
            "benchmarks/results/",
            lambda: import_results_dir(
                store, root / "benchmarks" / "results"
            ),
        ),
    )
    for name, step in steps:
        partial = step()
        if hook is not None:
            hook(name, partial)
        report.merge(partial)
    return report
