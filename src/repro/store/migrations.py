"""Versioned, idempotent schema migrations for the results database.

The schema version lives in SQLite's ``PRAGMA user_version``. Each
migration is a list of DDL statements that moves the database up exactly
one version; :func:`apply_migrations` replays, inside one transaction
per step, every migration above the database's current version and
stamps the new version atomically with it. Opening a database therefore
always lands on :data:`SCHEMA_VERSION`, opening it again is a no-op, and
a database written by an older build upgrades in place without touching
existing rows.
"""

from __future__ import annotations

import sqlite3

#: Current schema version — the version a freshly opened store has.
SCHEMA_VERSION = 2

#: migration index i upgrades a version-i database to version i+1.
MIGRATIONS: tuple[tuple[str, ...], ...] = (
    # -- v0 -> v1: the core run ledger -----------------------------------
    (
        """
        CREATE TABLE IF NOT EXISTS sweeps(
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            kind TEXT NOT NULL,
            label TEXT NOT NULL,
            recorded_at REAL NOT NULL,
            git_rev TEXT,
            fingerprint TEXT NOT NULL,
            meta_json TEXT NOT NULL
        )
        """,
        """
        CREATE TABLE IF NOT EXISTS runs(
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            sweep_id INTEGER REFERENCES sweeps(id),
            slot_id TEXT NOT NULL,
            kind TEXT NOT NULL,
            source TEXT NOT NULL DEFAULT 'live',
            label TEXT NOT NULL,
            sps TEXT NOT NULL,
            serving TEXT NOT NULL,
            model TEXT NOT NULL,
            nodes INTEGER NOT NULL DEFAULT 1,
            seed INTEGER,
            fingerprint TEXT NOT NULL,
            git_rev TEXT,
            recorded_at REAL NOT NULL,
            throughput REAL,
            latency_mean REAL,
            latency_p50 REAL,
            latency_p95 REAL,
            latency_p99 REAL,
            latency_p999 REAL,
            completed INTEGER,
            produced INTEGER,
            duplicates INTEGER,
            inference_requests INTEGER,
            measure_start REAL,
            measure_end REAL,
            record_json TEXT NOT NULL
        )
        """,
        "CREATE INDEX IF NOT EXISTS runs_by_slot"
        " ON runs(slot_id, recorded_at)",
        "CREATE INDEX IF NOT EXISTS runs_by_label"
        " ON runs(label, recorded_at)",
    ),
    # -- v1 -> v2: cost accounting, series summaries, import provenance --
    (
        "ALTER TABLE runs ADD COLUMN cost_proxy REAL",
        """
        CREATE TABLE IF NOT EXISTS series(
            run_id INTEGER NOT NULL REFERENCES runs(id),
            name TEXT NOT NULL,
            last REAL,
            peak REAL,
            mean REAL,
            samples INTEGER NOT NULL,
            PRIMARY KEY(run_id, name)
        )
        """,
        """
        CREATE TABLE IF NOT EXISTS artifacts(
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            source TEXT NOT NULL,
            sha256 TEXT NOT NULL,
            kind TEXT NOT NULL,
            imported_at REAL NOT NULL,
            UNIQUE(source, sha256)
        )
        """,
    ),
)

assert len(MIGRATIONS) == SCHEMA_VERSION


def schema_version(conn: sqlite3.Connection) -> int:
    """The database's stamped schema version (0 = empty/unversioned)."""
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def apply_migrations(
    conn: sqlite3.Connection, upto: int = SCHEMA_VERSION
) -> int:
    """Bring ``conn`` up to version ``upto``; returns migrations applied.

    Each step runs in its own transaction together with the version
    stamp, so an interrupted upgrade leaves the database at the last
    *completed* version — re-opening simply resumes. Applying to an
    already-current database executes nothing.
    """
    if not 0 <= upto <= SCHEMA_VERSION:
        raise ValueError(
            f"target version must be in [0, {SCHEMA_VERSION}], got {upto}"
        )
    current = schema_version(conn)
    if current > SCHEMA_VERSION:
        raise RuntimeError(
            f"results database is schema v{current}, newer than this "
            f"build's v{SCHEMA_VERSION}; refusing to touch it"
        )
    applied = 0
    for version in range(current, upto):
        with conn:  # one transaction per migration step
            for statement in MIGRATIONS[version]:
                conn.execute(statement)
            # PRAGMA cannot be parameterized; version is a trusted int.
            conn.execute(f"PRAGMA user_version = {version + 1}")
        applied += 1
    return applied
