"""The SQLite-backed results database (``repro.store``).

One file holds the repository's whole measurement history: every run —
single ``crayfish run``, matrix sweep, capacity-search probe, chaos
scenario, imported artifact — is a row keyed by the content address of
its (canonical config, seed) experiment, stamped with the code
fingerprint, the git revision, and the wall-clock recording time. The
shape follows the suites/benchmarks/results, checksum-keyed layout of
benchy's ``db.py``: ``sweeps`` group runs the way suites group
benchmarks, and ``slot_id`` is the checksum that makes the same
experiment comparable across revisions.

Recording is strictly off-by-default and happens *after* a simulation
finishes: a store never touches the event loop, the RNG streams, or any
export, so every artifact is byte-identical with recording on or off
(``crayfish verify-determinism`` holds either way).
"""

from __future__ import annotations

import pathlib
import sqlite3
import subprocess
import time
import typing

from repro.store.migrations import (
    SCHEMA_VERSION,
    apply_migrations,
    schema_version,
)
from repro.store.record import (
    RunRow,
    canonical_json,
    record_from_row,
    run_row_from_record,
)

#: Default database location, relative to the working directory.
DEFAULT_STORE_PATH = ".crayfish-store.sqlite"

_git_rev_cache: dict[str, str | None] = {}


def current_git_rev(cwd: str | None = None) -> str | None:
    """The checked-out git revision (short), or None outside a repo.

    Memoized per directory: the revision cannot change under a running
    process that is recording results it just produced.
    """
    key = cwd or "."
    if key not in _git_rev_cache:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short=12", "HEAD"],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=10,
            )
            rev = proc.stdout.strip()
            _git_rev_cache[key] = rev if proc.returncode == 0 and rev else None
        except (OSError, subprocess.SubprocessError):
            _git_rev_cache[key] = None
    return _git_rev_cache[key]


class ResultStore:
    """Append-mostly ledger of experiment results under ``path``.

    ``fingerprint`` defaults to the digest of the installed ``repro``
    source tree; ``git_rev`` to the checked-out revision; ``clock`` to
    wall time. All three are injectable so tests (and deterministic
    importers) can pin them. Writes go through SQLite transactions, so a
    killed process never leaves a torn row — at worst the last run is
    simply absent and re-records on the next attempt.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        fingerprint: str | None = None,
        git_rev: typing.Any = ...,
        clock: typing.Callable[[], float] | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        if str(self.path) != ":memory:" and str(self.path.parent) not in (
            "",
            ".",
        ):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        if fingerprint is None:
            from repro.matrix.fingerprint import code_fingerprint

            fingerprint = code_fingerprint()
        self.fingerprint = fingerprint
        self.git_rev = current_git_rev() if git_rev is ... else git_rev
        # Boundary module: recording timestamps real results after the
        # simulation has finished is exactly what wall time is for.
        # crayfish: allow[wall-clock]: recorded-at stamps are post-run provenance, never simulation input
        self.clock = time.time if clock is None else clock
        self.conn = sqlite3.connect(str(self.path))
        self.conn.row_factory = sqlite3.Row
        self.conn.execute("PRAGMA foreign_keys = ON")
        apply_migrations(self.conn)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: typing.Any) -> None:
        self.close()

    @property
    def schema_version(self) -> int:
        return schema_version(self.conn)

    # -- recording ---------------------------------------------------------

    def record_sweep(
        self, kind: str, label: str, meta: dict | None = None
    ) -> int:
        """Open a sweep (a group of runs recorded together); returns id."""
        with self.conn:
            cursor = self.conn.execute(
                "INSERT INTO sweeps(kind, label, recorded_at, git_rev,"
                " fingerprint, meta_json) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    kind,
                    label,
                    self.clock(),
                    self.git_rev,
                    self.fingerprint,
                    canonical_json(meta or {}),
                ),
            )
        return int(cursor.lastrowid)

    def update_sweep_meta(self, sweep_id: int, meta: dict) -> None:
        """Replace a sweep's metadata (e.g. final cache statistics)."""
        with self.conn:
            self.conn.execute(
                "UPDATE sweeps SET meta_json = ? WHERE id = ?",
                (canonical_json(meta), sweep_id),
            )

    def record_run(
        self,
        record: dict,
        kind: str = "run",
        source: str = "live",
        sweep_id: int | None = None,
        series: dict[str, dict] | None = None,
        label: str | None = None,
        recorded_at: float | None = None,
    ) -> int:
        """Insert one full result record; returns the new run id.

        ``record`` is the dict from
        :func:`repro.core.results_io.result_record`. ``series`` attaches
        per-metric-series summaries (last/peak/mean/samples, the shape
        of :func:`repro.metrics.export.series_summaries`) when the run
        was telemetry-on.
        """
        row = run_row_from_record(
            record,
            kind=kind,
            source=source,
            fingerprint=self.fingerprint,
            git_rev=self.git_rev,
            recorded_at=(
                self.clock() if recorded_at is None else recorded_at
            ),
            label=label,
        )
        return self._insert_row(row, sweep_id=sweep_id, series=series)

    def _insert_row(
        self,
        row: RunRow,
        sweep_id: int | None = None,
        series: dict[str, dict] | None = None,
    ) -> int:
        with self.conn:
            cursor = self.conn.execute(
                "INSERT INTO runs(sweep_id, slot_id, kind, source, label,"
                " sps, serving, model, nodes, seed, fingerprint, git_rev,"
                " recorded_at, throughput, latency_mean, latency_p50,"
                " latency_p95, latency_p99, latency_p999, completed,"
                " produced, duplicates, inference_requests, measure_start,"
                " measure_end, cost_proxy, record_json) VALUES"
                " (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
                " ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    sweep_id,
                    row.slot_id,
                    row.kind,
                    row.source,
                    row.label,
                    row.sps,
                    row.serving,
                    row.model,
                    row.nodes,
                    row.seed,
                    row.fingerprint,
                    row.git_rev,
                    row.recorded_at,
                    row.throughput,
                    row.latency_mean,
                    row.latency_p50,
                    row.latency_p95,
                    row.latency_p99,
                    row.latency_p999,
                    row.completed,
                    row.produced,
                    row.duplicates,
                    row.inference_requests,
                    row.measure_start,
                    row.measure_end,
                    row.cost_proxy,
                    canonical_json(row.record),
                ),
            )
            run_id = int(cursor.lastrowid)
            if series:
                self.conn.executemany(
                    "INSERT OR REPLACE INTO series(run_id, name, last,"
                    " peak, mean, samples) VALUES (?, ?, ?, ?, ?, ?)",
                    [
                        (
                            run_id,
                            name,
                            summary.get("last"),
                            summary.get("peak"),
                            summary.get("mean"),
                            summary.get("samples", 0),
                        )
                        for name, summary in sorted(series.items())
                    ],
                )
        return run_id

    def record_result(
        self,
        result: typing.Any,
        seed: int | None = None,
        kind: str = "run",
        sweep_id: int | None = None,
        label: str | None = None,
    ) -> int:
        """Record a live :class:`~repro.core.runner.ExperimentResult`.

        Serializes through the same
        :func:`~repro.core.results_io.result_record` round-trip the
        matrix engine and cache use, and — when the run was metrics-on —
        attaches the scraped series summaries.
        """
        from repro.core.results_io import result_record
        from repro.metrics.export import series_summaries

        record = result_record(
            result, seed=result.config.seed if seed is None else seed
        )
        series = None
        if result.telemetry is not None:
            series = series_summaries(result.telemetry.scraper)
        return self.record_run(
            record, kind=kind, sweep_id=sweep_id, series=series, label=label
        )

    def record_artifact(self, source: str, sha256: str, kind: str) -> bool:
        """Register an imported artifact; False when already imported.

        The (source, sha256) pair is unique, which is what makes
        ``crayfish store import`` idempotent: re-importing an unchanged
        file is a no-op, while an updated file imports again under its
        new digest.
        """
        try:
            with self.conn:
                self.conn.execute(
                    "INSERT INTO artifacts(source, sha256, kind,"
                    " imported_at) VALUES (?, ?, ?, ?)",
                    (source, sha256, kind, self.clock()),
                )
        except sqlite3.IntegrityError:
            return False
        return True

    # -- reading -----------------------------------------------------------

    def run(self, run_id: int) -> sqlite3.Row | None:
        return self.conn.execute(
            "SELECT * FROM runs WHERE id = ?", (run_id,)
        ).fetchone()

    def load_record(self, run_id: int) -> dict:
        """The full result record stored for ``run_id`` (lossless)."""
        row = self.run(run_id)
        if row is None:
            raise KeyError(f"no run with id {run_id}")
        return record_from_row(row)

    def series_of(self, run_id: int) -> dict[str, dict]:
        """Stored metric-series summaries for one run (may be empty)."""
        rows = self.conn.execute(
            "SELECT name, last, peak, mean, samples FROM series"
            " WHERE run_id = ? ORDER BY name",
            (run_id,),
        ).fetchall()
        return {
            row["name"]: {
                "last": row["last"],
                "peak": row["peak"],
                "mean": row["mean"],
                "samples": row["samples"],
            }
            for row in rows
        }

    def counts(self) -> dict[str, int]:
        """Row counts per table — the ``crayfish store info`` summary."""
        return {
            table: int(
                self.conn.execute(
                    f"SELECT COUNT(*) FROM {table}"  # noqa: S608 - fixed names
                ).fetchone()[0]
            )
            for table in ("runs", "sweeps", "series", "artifacts")
        }


def open_store(
    path: str | pathlib.Path | None,
    **kwargs: typing.Any,
) -> ResultStore | None:
    """A :class:`ResultStore` for ``path``, or None when path is falsy.

    The CLI convention: ``--store`` unset means recording stays off and
    the run is bit-for-bit identical to a build without this subsystem.
    """
    if not path:
        return None
    return ResultStore(path, **kwargs)


__all__ = [
    "DEFAULT_STORE_PATH",
    "ResultStore",
    "SCHEMA_VERSION",
    "current_git_rev",
    "open_store",
]
