"""Query layer over the results database: history, trend, regress, pareto.

Everything here is read-only SQL plus plain-Python analysis; rendering
lives in :mod:`repro.store.report`, recording in :mod:`repro.store.db`.
"""

from __future__ import annotations

import dataclasses
import sqlite3
import typing

from repro.errors import ConfigError
from repro.store.db import ResultStore
from repro.store.record import METRIC_DIRECTIONS


@dataclasses.dataclass(frozen=True)
class HistoryFilter:
    """Row predicate shared by history/trend/pareto queries."""

    sps: str | None = None
    serving: str | None = None
    model: str | None = None
    nodes: int | None = None
    kind: str | None = None
    slot_id: str | None = None
    limit: int | None = None

    def where(self) -> tuple[str, list]:
        clauses, params = [], []
        for column in ("sps", "serving", "model", "nodes", "kind", "slot_id"):
            value = getattr(self, column)
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        text = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return text, params


def _rows_to_dicts(rows: typing.Sequence[sqlite3.Row]) -> list[dict]:
    return [dict(row) for row in rows]


def history(
    store: ResultStore, filters: HistoryFilter | None = None
) -> list[dict]:
    """Stored runs matching ``filters``, newest first."""
    filters = filters or HistoryFilter()
    where, params = filters.where()
    sql = (
        "SELECT id, slot_id, kind, source, label, sps, serving, model,"
        " nodes, seed, fingerprint, git_rev, recorded_at, throughput,"
        " latency_mean, latency_p50, latency_p95, latency_p99,"
        " latency_p999, completed, produced, duplicates,"
        " inference_requests, cost_proxy, sweep_id"
        f" FROM runs{where} ORDER BY recorded_at DESC, id DESC"
    )
    if filters.limit is not None:
        sql += " LIMIT ?"
        params = params + [filters.limit]
    return _rows_to_dicts(store.conn.execute(sql, params).fetchall())


@dataclasses.dataclass(frozen=True)
class TrendSeries:
    """One config slot's trajectory of a metric across recordings."""

    slot_id: str
    label: str
    seed: int | None
    metric: str
    #: (recorded_at, git_rev, value) in recording order; value may be
    #: None when a run lacked the metric (e.g. no completions).
    points: tuple[tuple[float, str | None, float | None], ...]

    @property
    def values(self) -> list[float]:
        return [v for __, __, v in self.points if v is not None]


def validate_metric(metric: str) -> str:
    if metric not in METRIC_DIRECTIONS:
        raise ConfigError(
            f"unknown metric {metric!r}; expected one of "
            f"{', '.join(sorted(METRIC_DIRECTIONS))}"
        )
    return metric


def trend(
    store: ResultStore,
    metric: str = "throughput",
    filters: HistoryFilter | None = None,
    min_points: int = 1,
) -> list[TrendSeries]:
    """Per-slot trajectories of ``metric``, oldest point first.

    Slots are the longitudinal unit: the same canonical (config, seed)
    recorded under different code fingerprints / git revisions is one
    series, which is exactly the "did this configuration change across
    revisions" question. Slots with fewer than ``min_points``
    recordings are dropped.
    """
    validate_metric(metric)
    filters = filters or HistoryFilter()
    where, params = filters.where()
    sql = (
        f"SELECT slot_id, label, seed, recorded_at, git_rev, {metric}"
        f" FROM runs{where} ORDER BY slot_id, recorded_at, id"
    )
    series: list[TrendSeries] = []
    current: list[sqlite3.Row] = []

    def flush() -> None:
        if len(current) >= min_points:
            first = current[0]
            series.append(
                TrendSeries(
                    slot_id=first["slot_id"],
                    label=first["label"],
                    seed=first["seed"],
                    metric=metric,
                    points=tuple(
                        (row["recorded_at"], row["git_rev"], row[metric])
                        for row in current
                    ),
                )
            )

    for row in store.conn.execute(sql, params):
        if current and row["slot_id"] != current[0]["slot_id"]:
            flush()
            current = []
        current.append(row)
    if current:
        flush()
    series.sort(key=lambda s: (s.label, s.seed if s.seed is not None else -1))
    if filters.limit is not None:
        series = series[: filters.limit]
    return series


# -- regression gate --------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-current comparison."""

    metric: str
    baseline: float
    current: float
    #: Relative change, signed so positive is always an improvement.
    relative_gain: float
    threshold: float
    regressed: bool


@dataclasses.dataclass(frozen=True)
class RegressionVerdict:
    """Outcome of comparing one run against its stored baseline."""

    slot_id: str
    label: str
    baseline_run_id: int | None
    baseline_git_rev: str | None
    baseline_recorded_at: float | None
    deltas: tuple[MetricDelta, ...]

    @property
    def has_baseline(self) -> bool:
        return self.baseline_run_id is not None

    @property
    def regressed(self) -> tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def ok(self) -> bool:
        return not self.regressed


def baseline_for(
    store: ResultStore, slot_id: str, kind: str | None = None
) -> sqlite3.Row | None:
    """The most recent stored run for ``slot_id`` (the baseline).

    The latest recording wins: blessing a new baseline is simply
    recording a new run for the slot — no flag day, and history keeps
    every previous baseline for `crayfish trend` to show.
    """
    sql = "SELECT * FROM runs WHERE slot_id = ?"
    params: list = [slot_id]
    if kind is not None:
        sql += " AND kind = ?"
        params.append(kind)
    sql += " ORDER BY recorded_at DESC, id DESC LIMIT 1"
    return store.conn.execute(sql, params).fetchone()


#: Default relative thresholds per metric: throughput may drop at most
#: 15%, latency percentiles may rise at most 25% (tails are noisier than
#: means in short simulated runs, hence the shared generous bound).
DEFAULT_THRESHOLDS: dict[str, float] = {
    "throughput": 0.15,
    "latency_mean": 0.25,
    "latency_p95": 0.25,
    "latency_p99": 0.30,
}


def compare_to_baseline(
    store: ResultStore,
    slot_id: str,
    label: str,
    current: dict[str, float | None],
    thresholds: dict[str, float] | None = None,
) -> RegressionVerdict:
    """Compare ``current`` metric values against the stored baseline.

    ``current`` maps metric name -> measured value (None skips the
    metric, as does a missing/None baseline value — a slot that never
    completed anything cannot regress). A metric regresses when its
    relative change in the *worsening* direction exceeds its threshold.
    """
    thresholds = DEFAULT_THRESHOLDS if thresholds is None else thresholds
    baseline = baseline_for(store, slot_id)
    if baseline is None:
        return RegressionVerdict(
            slot_id=slot_id,
            label=label,
            baseline_run_id=None,
            baseline_git_rev=None,
            baseline_recorded_at=None,
            deltas=(),
        )
    deltas = []
    for metric in sorted(thresholds):
        validate_metric(metric)
        threshold = thresholds[metric]
        base_value = baseline[metric]
        value = current.get(metric)
        if base_value is None or value is None or base_value == 0:
            continue
        direction = METRIC_DIRECTIONS[metric]
        relative_gain = direction * (value - base_value) / abs(base_value)
        deltas.append(
            MetricDelta(
                metric=metric,
                baseline=base_value,
                current=value,
                relative_gain=relative_gain,
                threshold=threshold,
                regressed=relative_gain < -threshold,
            )
        )
    return RegressionVerdict(
        slot_id=slot_id,
        label=label,
        baseline_run_id=baseline["id"],
        baseline_git_rev=baseline["git_rev"],
        baseline_recorded_at=baseline["recorded_at"],
        deltas=tuple(deltas),
    )


# -- pareto frontier --------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ParetoPoint:
    """One configuration's position in the latency/throughput/cost space."""

    run_id: int
    slot_id: str
    label: str
    seed: int | None
    latency: float
    throughput: float
    cost: float
    on_frontier: bool


def pareto_frontier(
    store: ResultStore,
    filters: HistoryFilter | None = None,
    latency_metric: str = "latency_p95",
) -> list[ParetoPoint]:
    """The latency-vs-throughput-vs-cost frontier over stored configs.

    Only the *latest* recording per slot competes (older recordings are
    history, not candidate deployments). A point is dominated when some
    other point is at least as good on all three axes — lower latency,
    higher throughput, lower cost proxy — and strictly better on one.
    Points missing any axis (no completions, no cost) are excluded.
    Returns every competing point, frontier first, then by latency.
    """
    validate_metric(latency_metric)
    filters = filters or HistoryFilter()
    where, params = filters.where()
    sql = (
        f"SELECT id, slot_id, label, seed, {latency_metric} AS latency,"
        " throughput, cost_proxy FROM runs"
        f"{where} ORDER BY slot_id, recorded_at DESC, id DESC"
    )
    latest: dict[str, sqlite3.Row] = {}
    for row in store.conn.execute(sql, params):
        latest.setdefault(row["slot_id"], row)  # first row = newest
    candidates = [
        row
        for row in latest.values()
        if row["latency"] is not None
        and row["throughput"] is not None
        and row["cost_proxy"] is not None
    ]

    def dominates(a: sqlite3.Row, b: sqlite3.Row) -> bool:
        no_worse = (
            a["latency"] <= b["latency"]
            and a["throughput"] >= b["throughput"]
            and a["cost_proxy"] <= b["cost_proxy"]
        )
        better = (
            a["latency"] < b["latency"]
            or a["throughput"] > b["throughput"]
            or a["cost_proxy"] < b["cost_proxy"]
        )
        return no_worse and better

    points = [
        ParetoPoint(
            run_id=row["id"],
            slot_id=row["slot_id"],
            label=row["label"],
            seed=row["seed"],
            latency=row["latency"],
            throughput=row["throughput"],
            cost=row["cost_proxy"],
            on_frontier=not any(
                dominates(other, row)
                for other in candidates
                if other is not row
            ),
        )
        for row in candidates
    ]
    points.sort(key=lambda p: (not p.on_frontier, p.latency, p.run_id))
    if filters.limit is not None:
        points = points[: filters.limit]
    return points
