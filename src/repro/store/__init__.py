"""repro.store — the SQLite results database and longitudinal tracking.

The observability layer that turns per-run telemetry into cross-PR
telemetry: every run can be recorded (off by default, byte-identical
exports when off) into one queryable file keyed by canonical-config
hash + seed + code fingerprint + git revision + recording time. On top
sit the query surfaces behind ``crayfish history`` / ``trend`` /
``regress`` / ``pareto``: filterable run history, per-metric
trajectories across revisions, an automatic regression gate against the
stored baseline, and the latency/throughput/cost Pareto frontier across
every stored configuration.
"""

from repro.store.db import (
    DEFAULT_STORE_PATH,
    ResultStore,
    current_git_rev,
    open_store,
)
from repro.store.migrations import SCHEMA_VERSION, apply_migrations
from repro.store.queries import (
    DEFAULT_THRESHOLDS,
    HistoryFilter,
    MetricDelta,
    ParetoPoint,
    RegressionVerdict,
    TrendSeries,
    baseline_for,
    compare_to_baseline,
    history,
    pareto_frontier,
    trend,
)
from repro.store.record import (
    METRIC_DIRECTIONS,
    RunRow,
    cost_proxy,
    parse_label,
    record_from_row,
    run_row_from_record,
    slot_id_of,
)
from repro.store.report import (
    format_history,
    format_pareto,
    format_regression,
    format_trends,
)

__all__ = [
    "DEFAULT_STORE_PATH",
    "DEFAULT_THRESHOLDS",
    "HistoryFilter",
    "METRIC_DIRECTIONS",
    "MetricDelta",
    "ParetoPoint",
    "RegressionVerdict",
    "ResultStore",
    "RunRow",
    "SCHEMA_VERSION",
    "TrendSeries",
    "apply_migrations",
    "baseline_for",
    "compare_to_baseline",
    "cost_proxy",
    "current_git_rev",
    "format_history",
    "format_pareto",
    "format_regression",
    "format_trends",
    "history",
    "open_store",
    "pareto_frontier",
    "parse_label",
    "record_from_row",
    "run_row_from_record",
    "slot_id_of",
    "trend",
]
