"""Registry and factory for data-processor adapters."""

from __future__ import annotations

import typing

from repro.errors import ConfigError
from repro.serving.base import ServingTool
from repro.simul import Environment
from repro.sps.api import CompletionCallback, DataProcessor
from repro.sps.flink import FlinkProcessor
from repro.sps.flink.fault_tolerance import (
    CheckpointedFlinkProcessor,
    FaultToleranceConfig,
)
from repro.sps.gateways import InputGateway, OutputGateway
from repro.sps.kafka_streams import KafkaStreamsProcessor
from repro.sps.ray_actors import RayProcessor
from repro.metrics.registry import NO_METRICS
from repro.sps.spark import SparkProcessor
from repro.tracing.spans import NO_TRACE

ENGINES: dict[str, type[DataProcessor]] = {
    "flink": FlinkProcessor,
    "kafka_streams": KafkaStreamsProcessor,
    "spark_ss": SparkProcessor,
    "ray": RayProcessor,
}


def create_data_processor(
    name: str,
    env: Environment,
    tool: ServingTool,
    input_gateway: InputGateway,
    output_gateway: OutputGateway,
    mp: int = 1,
    on_complete: CompletionCallback | None = None,
    output_values_per_point: int = 1,
    operator_parallelism: tuple[int, int, int] | None = None,
    async_io: int = 0,
    scoring_window: int = 0,
    fault_tolerance: "FaultToleranceConfig | None" = None,
    tracer: typing.Any = NO_TRACE,
    metrics: typing.Any = NO_METRICS,
) -> DataProcessor:
    """Build the named engine wired to a serving tool and gateways."""
    try:
        engine_cls = ENGINES[name]
    except KeyError:
        raise ConfigError(
            f"unknown stream processor {name!r}; have {sorted(ENGINES)}"
        ) from None
    kwargs: dict[str, typing.Any] = {}
    if operator_parallelism is not None:
        if engine_cls is not FlinkProcessor:
            raise ConfigError("operator_parallelism is Flink-only")
        kwargs["operator_parallelism"] = operator_parallelism
    if async_io:
        if engine_cls is not FlinkProcessor:
            raise ConfigError("async_io is Flink-only")
        kwargs["async_io"] = async_io
    if scoring_window:
        if engine_cls is not FlinkProcessor:
            raise ConfigError("scoring_window is Flink-only")
        kwargs["scoring_window"] = scoring_window
    if fault_tolerance is not None:
        # Flink owns a native checkpointing implementation; the other
        # engines recover through repro.faults.recovery.EngineRecovery,
        # which the runner attaches externally.
        if engine_cls is not FlinkProcessor:
            raise ConfigError(
                "engine-native fault tolerance is Flink-only; other "
                "engines use repro.faults.recovery"
            )
        engine_cls = CheckpointedFlinkProcessor
        kwargs["fault_tolerance"] = fault_tolerance
    return engine_cls(
        env,
        tool,
        input_gateway,
        output_gateway,
        mp=mp,
        on_complete=on_complete,
        output_values_per_point=output_values_per_point,
        tracer=tracer,
        metrics=metrics,
        **kwargs,
    )
