"""Spark Structured Streaming (§3.4.1): micro-batch execution.

A serialized driver loop drains whatever arrived since the last trigger,
pays a fixed planning/commit overhead plus per-event bookkeeping, splits
the micro-batch into ``mp`` chunks, and runs the chunks in parallel on
executor cores. Within a chunk, Tungsten's columnar decode is cheaper
than row-at-a-time JSON parsing, and inference is issued as *one* batched
call per chunk — which is exactly why Spark saturates external servers
(§5.3, Fig. 11) and posts the highest throughput of the studied SPSs
(Table 5) while paying the worst latency (trigger waits, Fig. 10).

The driver's serialized per-event work caps throughput at a flat ceiling
regardless of ``mp`` (Fig. 11: ~23k ev/s at every parallelism).
"""

from __future__ import annotations

import typing

from repro import calibration as cal
from repro.netsim.link import LAN
from repro.sps.api import DataProcessor
from repro.sps.gateways import InputEvent
from repro.simul import Resource


class SparkProcessor(DataProcessor):
    """The Spark Structured Streaming data-processor adapter."""

    name = "spark_ss"
    profile = cal.SPARK_PROFILE

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        super().__init__(*args, **kwargs)
        self.triggers_fired = 0

    def _spawn_tasks(self) -> None:
        self._inflight = Resource(self.env, capacity=cal.SPARK_INFLIGHT_TRIGGERS)
        self.metrics.gauge(
            "spark_trigger_backlog",
            help="records arrived but not yet planned into a micro-batch",
            fn=lambda: sum(s.lag() for s in self._sources),
        )
        self.metrics.gauge(
            "spark_inflight_triggers",
            help="micro-batches currently executing on the cluster",
            fn=lambda: self._inflight.count,
        )
        self.metrics.counter(
            "spark_triggers",
            help="micro-batch triggers completed",
            fn=lambda: self.triggers_fired,
        )
        self._spawn(self._driver_loop())

    def _driver_loop(self) -> typing.Generator:
        source = self._new_source(0, 1)
        while True:
            # The driver only *plans* the micro-batch (offset ranges);
            # executors pull the record data from the brokers themselves.
            events = yield from source.poll(
                max_records=cal.SPARK_MAX_BATCH_EVENTS, data_transfer=False
            )
            polled_at = self.env.now
            # Trigger: planning + commit, plus serialized per-event driver
            # bookkeeping (collect, offsets, progress reporting).
            yield self.env.service_timeout(
                cal.SPARK_TRIGGER_OVERHEAD
                + len(events) * cal.SPARK_DRIVER_PER_EVENT
            )
            for event in events:
                self.tracer.record(event.batch, "spark.driver", start=polled_at)
            # Spark overlaps fetching/planning the next micro-batch with
            # executing the current one, bounded by the in-flight cap.
            waits = [
                self.tracer.begin(event.batch, "spark.schedule_wait")
                for event in events
            ]
            slot = self._inflight.request()
            yield slot
            for wait in waits:
                self.tracer.end(wait)
            self._spawn(self._execute_trigger(events, slot))

    def _execute_trigger(self, events: list[InputEvent], slot) -> typing.Generator:
        chunks = self._split(events, self.mp)
        tasks = [self._spawn(self._chunk_task(chunk)) for chunk in chunks]
        yield self.env.all_of(tasks)
        self._inflight.release(slot)
        self.triggers_fired += 1

    @staticmethod
    def _split(events: list, parts: int) -> list[list]:
        chunks = [events[i::parts] for i in range(parts)]
        return [chunk for chunk in chunks if chunk]

    def _chunk_task(self, events: list[InputEvent]) -> typing.Generator:
        # Executor-side Kafka read of this chunk's record data.
        chunk_bytes = sum(e.nbytes for e in events)
        if chunk_bytes:
            spans = [
                self.tracer.begin(e.batch, "spark.executor_fetch") for e in events
            ]
            yield self.env.service_timeout(LAN.transfer_time(chunk_bytes))
            for span in spans:
                self.tracer.end(span)
        decode = sum(self.decode_cost(e.batch) for e in events)
        overheads = len(events) * (
            self.profile.source_overhead + self.profile.score_overhead
        )
        spans = [self.tracer.begin(e.batch, "spark.chunk_cpu") for e in events]
        yield self.env.service_timeout((decode + overheads) * self.slowdown)
        for span in spans:
            self.tracer.end(span)
        # One batched, vectorized inference call for the whole chunk.
        total_points = sum(e.batch.points for e in events)
        spans = [
            self.tracer.begin(e.batch, "spark.score", chunk=len(events))
            for e in events
        ]
        # ctx carries the chunk's oldest batch: serving attributes its
        # spans (and, crucially, its content-keyed noise draw) to a
        # stable member instead of drawing in schedule order.
        result = yield from self.tool.score(
            total_points, vectorized=True, ctx=events[0].batch
        )
        for span in spans:
            self.tracer.end(span)
        if result is None:  # shed by the resilience layer
            self.batches_shed += len(events)
            return
        for event in events:
            batch = event.batch
            span = self.tracer.begin(batch, "spark.sink")
            yield self.env.service_timeout(
                (self.profile.sink_overhead + self.encode_cost(batch)) * self.slowdown
            )
            self.tracer.end(span)
            self.emit_and_complete(batch)
