"""Spark Structured Streaming adapter."""

from repro.sps.spark.engine import SparkProcessor

__all__ = ["SparkProcessor"]
