"""Input/output gateways: how engines reach the outside world.

Crayfish's default pipeline flows through Kafka (:class:`BrokerInput` /
:class:`BrokerOutput`). The standalone variant of §6.2 (Fig. 13) swaps in
:class:`DirectInput` / :class:`DirectOutput`: an in-process queue with no
serialization and no broker hops, leaving the SPS untouched.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.broker import BrokerCluster, Consumer, Producer
from repro.core.batch import CrayfishDataBatch
from repro.simul import Environment, Store


@dataclasses.dataclass(frozen=True)
class InputEvent:
    """One event as handed to an engine's source operator."""

    batch: CrayfishDataBatch
    #: Wire size; drives decode and Flink buffer costs. 0 in direct mode.
    nbytes: float


class InputGateway:
    """Where source operators read events from."""

    #: Whether events carry serialized payloads (decode must be charged).
    charges_serde: bool = True

    def make_source(self, member: int, members: int) -> "SourceHandle":
        raise NotImplementedError


class SourceHandle:
    """Per-task handle with Kafka-poll semantics."""

    def poll(
        self, max_records: int = 500, data_transfer: bool = True
    ) -> typing.Generator:
        """Coroutine: block until data; return list[InputEvent].

        ``data_transfer=False`` is a metadata-only planning fetch (record
        payloads are pulled later, by whoever processes them)."""
        raise NotImplementedError

    def lag(self) -> int:
        raise NotImplementedError

    def position(self) -> dict[int, int]:
        """Checkpointable read position (empty when not applicable)."""
        return {}

    def seek(self, offsets: dict[int, int]) -> None:
        """Restore a checkpointed read position (no-op by default)."""


class OutputGateway:
    """Where sink operators write scored events to."""

    charges_serde: bool = True

    def emit(
        self, batch: CrayfishDataBatch, nbytes: float
    ) -> typing.Generator:
        """Coroutine: deliver one output record; returns the end timestamp
        (broker LogAppendTime, or local time in direct mode)."""
        raise NotImplementedError


# -- Kafka-backed (the Crayfish default) ------------------------------------


class _BrokerSource(SourceHandle):
    def __init__(self, consumer: Consumer) -> None:
        self._consumer = consumer

    def poll(
        self, max_records: int = 500, data_transfer: bool = True
    ) -> typing.Generator:
        records = yield from self._consumer.poll(max_records, data_transfer)
        return [InputEvent(batch=r.value, nbytes=r.nbytes) for r in records]

    def lag(self) -> int:
        return self._consumer.lag()

    def position(self) -> dict[int, int]:
        return self._consumer.position()

    def seek(self, offsets: dict[int, int]) -> None:
        self._consumer.seek(offsets)


class BrokerInput(InputGateway):
    def __init__(
        self,
        env: Environment,
        cluster: BrokerCluster,
        topic: str,
        node_of_member: typing.Callable[[int], str] | None = None,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.topic = topic
        #: Scale-out placement: maps a source-task index to the cluster
        #: node it runs on, so its fetches pay that node's links. None
        #: (the default) keeps the single shared-LAN cost model.
        self.node_of_member = node_of_member

    def make_source(self, member: int, members: int) -> SourceHandle:
        node = None if self.node_of_member is None else self.node_of_member(member)
        return _BrokerSource(
            Consumer(self.env, self.cluster, self.topic, member, members, node=node)
        )


class BrokerOutput(OutputGateway):
    def __init__(
        self,
        env: Environment,
        cluster: BrokerCluster,
        topic: str,
        node: str | None = None,
    ) -> None:
        self.env = env
        self.producer = Producer(env, cluster, node=node)
        self.topic = topic

    def emit(self, batch: CrayfishDataBatch, nbytes: float) -> typing.Generator:
        metadata = yield from self.producer.send(
            self.topic, value=batch, nbytes=nbytes, timestamp=batch.created_at
        )
        return metadata.log_append_time


# -- Direct (standalone, Fig. 13) --------------------------------------------


class _DirectSource(SourceHandle):
    def __init__(self, store: Store) -> None:
        self._store = store

    def poll(
        self, max_records: int = 500, data_transfer: bool = True
    ) -> typing.Generator:
        first = yield self._store.get()
        events = [first]
        while len(events) < max_records:
            ok, item = self._store.try_get()
            if not ok:
                break
            events.append(item)
        return events

    def lag(self) -> int:
        return self._store.level


class DirectInput(InputGateway):
    """In-process handoff: no serialization, no broker, no network."""

    charges_serde = False

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._stores: dict[int, Store] = {}
        self._members = 1

    def make_source(self, member: int, members: int) -> SourceHandle:
        self._members = members
        store = self._stores.setdefault(member, Store(self.env))
        return _DirectSource(store)

    def push(self, batch: CrayfishDataBatch) -> None:
        """Called by the in-process generator (round-robin over tasks)."""
        member = batch.batch_id % self._members
        store = self._stores.setdefault(member, Store(self.env))
        store.try_put(InputEvent(batch=batch, nbytes=0.0))


class DirectOutput(OutputGateway):
    charges_serde = False

    def __init__(self, env: Environment) -> None:
        self.env = env

    def emit(self, batch: CrayfishDataBatch, nbytes: float) -> typing.Generator:
        return self.env.now
        yield  # pragma: no cover - generator marker
