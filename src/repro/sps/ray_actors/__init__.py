"""Ray actor-pipeline adapter."""

from repro.sps.ray_actors.engine import RayProcessor

__all__ = ["RayProcessor"]
