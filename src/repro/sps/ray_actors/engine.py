"""Ray (§3.4.4): an actor pipeline standing in for a dataflow graph.

``mp`` input actors, ``mp`` scoring actors, and ``mp`` output actors are
chained one-to-one (§4.3). Every message delivery pays Python actor
overhead (mailbox, scheduling, GIL), and all scoring-stage deliveries
additionally cross the node's serialized scheduler — the mechanism behind
Ray's low per-event throughput (Table 5: 157 ev/s) and its ~1.2k ev/s
plateau when scaling up (Fig. 11). Being Python-native, Ray needs no
interoperability library for embedded scoring; latency at low rates is
competitive with the JVM engines (Fig. 10).
"""

from __future__ import annotations

import typing

from repro import calibration as cal
from repro.sps.api import DataProcessor
from repro.sps.gateways import InputEvent
from repro.simul import Resource, Store

#: Actor mailbox capacity: puts block when a downstream actor lags.
MAILBOX_CAPACITY = 16


class RayProcessor(DataProcessor):
    """The Ray data-processor adapter (actor pipeline)."""

    name = "ray"
    profile = cal.RAY_PROFILE

    def _spawn_tasks(self) -> None:
        # One serialized scheduler *per cluster node*: actors placed on
        # the same node contend for it, actors on other nodes do not.
        # Single-node runs (no placement on the input gateway) collapse
        # to one shared resource, the original Fig. 11 bottleneck.
        node_of = getattr(self.input, "node_of_member", None)
        self._node_scheds: dict[object, Resource] = {}
        self._mailboxes: dict[str, list[Store]] = {"score": [], "output": []}
        for stage in self._mailboxes:
            self.metrics.gauge(
                "ray_mailbox_depth",
                help="messages queued in the stage's actor mailboxes",
                labels={"stage": stage},
                # Late-bound through self so the gauge follows the fresh
                # mailboxes created when the engine restarts.
                fn=lambda s=stage: sum(
                    box.level for box in self._mailboxes[s]
                ),
            )
        self.metrics.gauge(
            "ray_scheduler_queue",
            help="deliveries waiting on the serialized node schedulers",
            fn=lambda: sum(
                len(sched.queue) for sched in self._node_scheds.values()
            ),
        )
        for lane in range(self.mp):
            node = node_of(lane) if node_of is not None else None
            sched = self._node_scheds.get(node)
            if sched is None:
                sched = self._node_scheds[node] = Resource(self.env, capacity=1)
            score_box: Store = Store(self.env, capacity=MAILBOX_CAPACITY)
            out_box: Store = Store(self.env, capacity=MAILBOX_CAPACITY)
            self._mailboxes["score"].append(score_box)
            self._mailboxes["output"].append(out_box)
            self._spawn(self._input_actor(lane, self.mp, score_box))
            self._spawn(self._scoring_actor(score_box, out_box, sched))
            self._spawn(self._output_actor(out_box))

    def _input_actor(self, member: int, members: int, downstream: Store) -> typing.Generator:
        source = self._new_source(member, members)
        while True:
            events = yield from source.poll()
            polled_at = self.env.now
            for event in events:
                self.tracer.record(event.batch, "ray.task_queue", start=polled_at)
                span = self.tracer.begin(event.batch, "ray.input_actor")
                yield self.env.service_timeout(
                    cal.RAY_ACTOR_OVERHEAD
                    + self.profile.source_overhead
                    + self.decode_cost(event.batch)
                )
                self.tracer.end(span)
                wait = self.tracer.begin(event.batch, "ray.mailbox_wait")
                # Mark at enqueue, before the put: the consumer's lapse()
                # races the putter's resumption in the same tie class, so
                # marking after the yield drops the dwell span whenever
                # the getter pops first (verify-order caught this).
                self.tracer.mark(event.batch, "ray.mailbox")
                yield downstream.put(event)
                self.tracer.end(wait)

    def _scoring_actor(
        self, upstream: Store, downstream: Store, node_sched: Resource
    ) -> typing.Generator:
        while True:
            event = yield upstream.get()
            self.tracer.lapse(event.batch, "ray.mailbox_dwell", "ray.mailbox")
            span = self.tracer.begin(event.batch, "ray.scoring_actor")
            yield self.env.service_timeout(
                cal.RAY_ACTOR_OVERHEAD + self.profile.score_overhead
            )
            self.tracer.end(span)
            # Delivery into the scoring stage crosses the node scheduler.
            wait = self.tracer.begin(event.batch, "ray.scheduler_wait")
            with node_sched.request() as slot:
                yield slot
                self.tracer.end(wait)
                span = self.tracer.begin(event.batch, "ray.scheduler")
                yield self.env.service_timeout(cal.RAY_NODE_PER_MESSAGE)
                self.tracer.end(span)
            span = self.tracer.begin(event.batch, "ray.score")
            result = yield from self.tool.score(event.batch.points, ctx=event.batch)
            self.tracer.end(span)
            if result is None:  # shed by the resilience layer
                self.batches_shed += 1
                continue
            wait = self.tracer.begin(event.batch, "ray.mailbox_wait")
            # Enqueue mark precedes the put for the same tie-race reason
            # as in _input_actor.
            self.tracer.mark(event.batch, "ray.mailbox")
            yield downstream.put(event)
            self.tracer.end(wait)

    def _output_actor(self, upstream: Store) -> typing.Generator:
        while True:
            event: InputEvent = yield upstream.get()
            batch = event.batch
            self.tracer.lapse(batch, "ray.mailbox_dwell", "ray.mailbox")
            span = self.tracer.begin(batch, "ray.output_actor")
            yield self.env.service_timeout(
                cal.RAY_ACTOR_OVERHEAD
                + self.profile.sink_overhead
                + self.encode_cost(batch)
            )
            self.tracer.end(span)
            self.emit_and_complete(batch)
