"""Ray (§3.4.4): an actor pipeline standing in for a dataflow graph.

``mp`` input actors, ``mp`` scoring actors, and ``mp`` output actors are
chained one-to-one (§4.3). Every message delivery pays Python actor
overhead (mailbox, scheduling, GIL), and all scoring-stage deliveries
additionally cross the node's serialized scheduler — the mechanism behind
Ray's low per-event throughput (Table 5: 157 ev/s) and its ~1.2k ev/s
plateau when scaling up (Fig. 11). Being Python-native, Ray needs no
interoperability library for embedded scoring; latency at low rates is
competitive with the JVM engines (Fig. 10).
"""

from __future__ import annotations

import typing

from repro import calibration as cal
from repro.sps.api import DataProcessor
from repro.sps.gateways import InputEvent
from repro.simul import Resource, Store

#: Actor mailbox capacity: puts block when a downstream actor lags.
MAILBOX_CAPACITY = 16


class RayProcessor(DataProcessor):
    """The Ray data-processor adapter (actor pipeline)."""

    name = "ray"
    profile = cal.RAY_PROFILE

    def _spawn_tasks(self) -> None:
        # One serialized per-node scheduler shared by all actors.
        self._node = Resource(self.env, capacity=1)
        for lane in range(self.mp):
            score_box: Store = Store(self.env, capacity=MAILBOX_CAPACITY)
            out_box: Store = Store(self.env, capacity=MAILBOX_CAPACITY)
            self.env.process(self._input_actor(lane, self.mp, score_box))
            self.env.process(self._scoring_actor(score_box, out_box))
            self.env.process(self._output_actor(out_box))

    def _input_actor(self, member: int, members: int, downstream: Store) -> typing.Generator:
        source = self.input.make_source(member, members)
        while True:
            events = yield from source.poll()
            for event in events:
                yield self.env.timeout(
                    cal.RAY_ACTOR_OVERHEAD
                    + self.profile.source_overhead
                    + self.decode_cost(event.batch)
                )
                yield downstream.put(event)

    def _scoring_actor(self, upstream: Store, downstream: Store) -> typing.Generator:
        while True:
            event = yield upstream.get()
            yield self.env.timeout(
                cal.RAY_ACTOR_OVERHEAD + self.profile.score_overhead
            )
            # Delivery into the scoring stage crosses the node scheduler.
            with self._node.request() as slot:
                yield slot
                yield self.env.timeout(cal.RAY_NODE_PER_MESSAGE)
            yield from self.tool.score(event.batch.points)
            yield downstream.put(event)

    def _output_actor(self, upstream: Store) -> typing.Generator:
        while True:
            event: InputEvent = yield upstream.get()
            batch = event.batch
            yield self.env.timeout(
                cal.RAY_ACTOR_OVERHEAD
                + self.profile.sink_overhead
                + self.encode_cost(batch)
            )
            self.emit_and_complete(batch)
