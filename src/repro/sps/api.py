"""The data-processor adapter interface (§3.2).

Every engine consumes :class:`~repro.sps.gateways.InputEvent` objects from
an input gateway, runs the scoring operator (an embedded library call or a
blocking RPC to an external server), and emits results through an output
gateway. Engines report each completed batch to a completion callback —
the hook the metrics collector attaches to.
"""

from __future__ import annotations

import typing

from repro import calibration as cal
from repro.core.batch import CrayfishDataBatch
from repro.metrics.registry import NO_METRICS
from repro.netsim import json_payload
from repro.serving.base import ServingTool
from repro.simul import Environment, Interrupt, Process
from repro.sps.gateways import InputGateway, OutputGateway, SourceHandle
from repro.tracing.spans import NO_TRACE

#: Called with (batch, end_timestamp) when a batch leaves the pipeline.
CompletionCallback = typing.Callable[[CrayfishDataBatch, float], None]


class DataProcessor:
    """Base class for SPS adapters."""

    name: str = ""
    profile: cal.SpsProfile

    def __init__(
        self,
        env: Environment,
        tool: ServingTool,
        input_gateway: InputGateway,
        output_gateway: OutputGateway,
        mp: int = 1,
        on_complete: CompletionCallback | None = None,
        output_values_per_point: int = 1,
        tracer: typing.Any = NO_TRACE,
        metrics: typing.Any = NO_METRICS,
    ) -> None:
        self.env = env
        self.tool = tool
        self.input = input_gateway
        self.output = output_gateway
        self.mp = mp
        self.on_complete = on_complete
        self.output_values_per_point = output_values_per_point
        self.tracer = tracer
        self.metrics = metrics
        self.batches_completed = 0
        #: Batches dropped by graceful degradation (resilience "shed").
        self.batches_shed = 0
        self._sources: list[SourceHandle] = []
        #: Live task processes, so fault injection can crash the engine.
        self._task_processes: list[Process] = []
        #: Per-source offset maps to restore on the next (re)spawn, in
        #: source-creation order (checkpoint recovery).
        self._pending_restore: list[dict[int, int]] = []
        #: Output records buffered in asynchronous emit (fire-and-forget
        #: Kafka produces in flight). Maintained unconditionally — two
        #: integer ops per batch — so metrics-on/off runs stay identical.
        self._emits_inflight = 0
        metrics.gauge(
            "engine_input_queue",
            help="records fetched-able but not yet polled by source tasks",
            labels={"engine": self.name},
            fn=lambda: sum(s.lag() for s in self._sources),
        )
        metrics.gauge(
            "engine_output_queue",
            help="scored records in asynchronous sink emission",
            labels={"engine": self.name},
            fn=lambda: self._emits_inflight,
        )
        metrics.counter(
            "engine_batches_completed",
            help="batches the engine has reported complete",
            labels={"engine": self.name},
            fn=lambda: self.batches_completed,
        )
        metrics.counter(
            "engine_batches_shed",
            help="batches dropped by resilience load shedding",
            labels={"engine": self.name},
            fn=lambda: self.batches_shed,
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Load the model, then spawn the engine's task processes."""
        self.env.process(self._bootstrap())

    def _bootstrap(self) -> typing.Generator:
        yield from self.tool.load()
        self._spawn_tasks()

    def _spawn_tasks(self) -> None:
        raise NotImplementedError

    def _spawn(self, generator: typing.Generator) -> Process:
        """Spawn a crashable task process and track it for fault
        injection; an injected interrupt terminates the task quietly."""
        self._task_processes = [p for p in self._task_processes if p.is_alive]
        process = self.env.process(self._crashable(generator))
        self._task_processes.append(process)
        return process

    @staticmethod
    def _crashable(generator: typing.Generator) -> typing.Generator:
        try:
            yield from generator
        except Interrupt:
            return

    @property
    def tasks_alive(self) -> bool:
        """Is any engine task still running? (False after a crash.)"""
        return any(p.is_alive for p in self._task_processes)

    def crash(self) -> None:
        """Fail the engine job: every task dies, source handles are
        discarded (their offsets are lost with the process state)."""
        tasks, self._task_processes = self._task_processes, []
        self._sources = []
        for task in tasks:
            if task.is_alive:
                task.interrupt("engine crashed")

    def checkpoint_positions(self) -> list[dict[int, int]]:
        """Source offsets per handle, in creation order (a checkpoint)."""
        return [source.position() for source in self._sources]

    def restart(self, positions: list[dict[int, int]] | None = None) -> None:
        """Re-run the tasks, optionally rewinding sources to a checkpoint.

        ``positions`` must come from :meth:`checkpoint_positions`; tasks
        recreate their sources in the same order, so offsets are restored
        positionally as each source is opened.
        """
        self._pending_restore = [dict(p) for p in positions or []]
        self._spawn_tasks()

    def _new_source(self, member: int, members: int) -> SourceHandle:
        """Open a source handle and keep it observable for telemetry."""
        source = self.input.make_source(member, members)
        if self._pending_restore:
            source.seek(self._pending_restore.pop(0))
        self._sources.append(source)
        return source

    # -- shared cost helpers -------------------------------------------------

    @property
    def slowdown(self) -> float:
        """Process-wide slowdown when inference shares the SPS process.

        Embedded serving contends with the engine for the host (JVM heap,
        GC, memory bandwidth): the paper's Fig. 6 shows embedded tools
        scaling sublinearly while external tools scale linearly. External
        serving leaves the SPS at factor 1.
        """
        if self.tool.kind == "embedded":
            return self.tool.costs.contention_factor
        return 1.0

    def decode_cost(self, batch: CrayfishDataBatch) -> float:
        """Deserialization CPU for one input event."""
        if not self.input.charges_serde:
            return 0.0
        return json_payload(batch.input_values).decode_cost

    def output_payload(self, batch: CrayfishDataBatch):
        """JSON payload of the scored result (predictions only)."""
        values = batch.points * self.output_values_per_point
        return json_payload(values)

    def encode_cost(self, batch: CrayfishDataBatch) -> float:
        if not self.output.charges_serde:
            return 0.0
        return self.output_payload(batch).encode_cost

    def output_nbytes(self, batch: CrayfishDataBatch) -> float:
        if not self.output.charges_serde:
            return 0.0
        return self.output_payload(batch).nbytes

    def _complete(self, batch: CrayfishDataBatch, end_time: float) -> None:
        self.batches_completed += 1
        # The root span closes at the same end timestamp the metrics
        # collector records, so root duration == measured e2e latency.
        self.tracer.close_root(batch, end_time)
        if self.on_complete is not None:
            self.on_complete(batch, end_time)

    def _emit(self, batch: CrayfishDataBatch) -> typing.Generator:
        """Sink-side delivery; returns the end timestamp (blocking form)."""
        end_time = yield from self.output.emit(batch, self.output_nbytes(batch))
        return end_time

    def emit_and_complete(self, batch: CrayfishDataBatch) -> None:
        """Fire-and-forget produce: Kafka producers buffer and send
        asynchronously, so the sink task never blocks on the broker round
        trip. Completion is reported at append time (LogAppendTime)."""
        self.env.process(self._emit_process(batch))

    def _emit_process(self, batch: CrayfishDataBatch) -> typing.Generator:
        self._emits_inflight += 1
        try:
            end_time = yield from self._emit(batch)
        finally:
            self._emits_inflight -= 1
        self._complete(batch, end_time)
