"""Stream-processor adapters (the paper's data-processor component).

Four engines with deliberately different execution semantics (§3.4, Fig. 4):

- :mod:`flink` -- push-based pipelined dataflow with operator chaining and
  optional operator-level parallelism.
- :mod:`kafka_streams` -- pull-based: each stream thread walks one event
  through the whole DAG before polling the next.
- :mod:`spark` -- micro-batch execution with a serialized driver.
- :mod:`ray_actors` -- actor pipeline (input / scoring / output actor types).

All engines implement the adapter interface of §3.2: an input operator, a
scoring operator (embedded or external), and an output operator.
"""

from repro.sps.api import DataProcessor
from repro.sps.registry import create_data_processor

__all__ = ["DataProcessor", "create_data_processor"]
