"""Checkpointing, failure injection, and delivery guarantees for Flink.

The paper's §7.2 argues that processing guarantees — fault tolerance,
exactly-once — are where embedded serving retains an edge, because
external inference calls are side effects the SPS cannot roll back. This
module makes that claim measurable:

- **Checkpointing**: a coordinator snapshots every task's Kafka offsets
  each ``interval`` seconds (Flink's aligned checkpoints; the barrier
  pause is charged to the task).
- **Failure injection**: at configured times, all tasks are killed; after
  ``recovery_time`` (process restart + model reload) the job resumes from
  the last completed checkpoint, re-reading everything after it.
- **Delivery guarantees**:
  - ``at_least_once``: the sink emits immediately; replayed events appear
    twice downstream, and external servers see duplicate inference
    requests (the paper's "weaker fault-tolerance guarantees" for
    external serving).
  - ``exactly_once``: the sink writes into a Kafka transaction that only
    commits with the next checkpoint; an aborted transaction discards
    uncommitted output, so downstream sees each batch once — at the cost
    of commit-quantized latency.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.batch import CrayfishDataBatch
from repro.errors import ConfigError
from repro.simul import Interrupt, Process
from repro.sps.flink.engine import FlinkProcessor
from repro.sps.gateways import InputEvent

AT_LEAST_ONCE = "at_least_once"
EXACTLY_ONCE = "exactly_once"
GUARANTEES = (AT_LEAST_ONCE, EXACTLY_ONCE)

#: Task pause while taking an (asynchronous) state snapshot.
SNAPSHOT_PAUSE = 0.002
#: Fixed coordinator cost to finalize a checkpoint.
CHECKPOINT_COMMIT_COST = 0.005


@dataclasses.dataclass(frozen=True)
class FaultToleranceConfig:
    """Checkpointing + failure-injection plan for one run."""

    checkpoint_interval: float = 1.0
    guarantee: str = AT_LEAST_ONCE
    #: Simulated times at which the whole job crashes.
    failure_times: tuple[float, ...] = ()
    #: Downtime per failure: restart, state restore, model reload.
    recovery_time: float = 0.5

    def __post_init__(self) -> None:
        if self.checkpoint_interval <= 0:
            raise ConfigError("checkpoint_interval must be positive")
        if self.guarantee not in GUARANTEES:
            raise ConfigError(
                f"guarantee must be one of {GUARANTEES}, got {self.guarantee!r}"
            )
        if self.recovery_time < 0:
            raise ConfigError("recovery_time must be non-negative")
        if any(t <= 0 for t in self.failure_times):
            raise ConfigError("failure times must be positive")


class CheckpointedFlinkProcessor(FlinkProcessor):
    """Flink with checkpoints, crash recovery, and sink guarantees.

    Supports the default (chained) deployment used by all headline
    experiments; operator-level parallelism and async I/O are orthogonal
    features not combined with fault tolerance here.
    """

    def __init__(
        self,
        *args: typing.Any,
        fault_tolerance: FaultToleranceConfig,
        **kwargs: typing.Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        if self.operator_parallelism is not None:
            raise ConfigError("fault tolerance supports chained deployments only")
        if self.async_io:
            raise ConfigError("fault tolerance does not combine with async I/O")
        self.ft = fault_tolerance
        self.checkpoints_completed = 0
        self.failures_injected = 0
        self.restarts = 0
        # Live task bookkeeping (rebuilt after every restart).
        self._tasks: list[Process] = []
        self._sources: list = []
        #: Offsets of the last *completed* checkpoint, per task.
        self._committed_offsets: list[dict[int, int]] = []
        #: Exactly-once: outputs buffered in the open transaction, per task.
        self._txn_buffers: list[list[CrayfishDataBatch]] = []
        self._epoch = 0  # increments on every restart

    # -- lifecycle -----------------------------------------------------------

    def _spawn_tasks(self) -> None:
        self._start_job(initial=True)
        self.env.process(self._checkpoint_coordinator())
        for failure_time in sorted(self.ft.failure_times):
            self.env.process(self._failure_injector(failure_time))

    def _start_job(self, initial: bool) -> None:
        self._tasks = []
        self._sources = []
        self._txn_buffers = [[] for __ in range(self.mp)]
        if initial:
            self._committed_offsets = [{} for __ in range(self.mp)]
        for task_index in range(self.mp):
            source = self.input.make_source(task_index, self.mp)
            # Restore: rewind the fresh source to the committed offsets.
            if self._committed_offsets[task_index]:
                source.seek(self._committed_offsets[task_index])
            self._sources.append(source)
            process = self.env.process(self._ft_task(task_index, source))
            self._tasks.append(process)

    def _ft_task(self, task_index: int, source) -> typing.Generator:
        try:
            while True:
                events = yield from source.poll()
                for event in events:
                    yield self.env.service_timeout(self._source_cost(event))
                    result = yield from self._score(event)
                    if result is None:  # shed by the resilience layer
                        self.batches_shed += 1
                        continue
                    yield from self._ft_sink(task_index, event)
        except Interrupt:
            return  # crashed; the injector handles restart

    def _ft_sink(self, task_index: int, event: InputEvent) -> typing.Generator:
        batch = event.batch
        yield self.env.service_timeout(
            (self.profile.sink_overhead + self.encode_cost(batch)) * self.slowdown
        )
        if self.ft.guarantee == EXACTLY_ONCE:
            # Written into the open Kafka transaction: invisible downstream
            # until the next checkpoint commits it.
            self._txn_buffers[task_index].append(batch)
        else:
            self.emit_and_complete(batch)

    # -- checkpointing --------------------------------------------------------

    def _checkpoint_coordinator(self) -> typing.Generator:
        while True:
            yield self.env.service_timeout(self.ft.checkpoint_interval)
            if not self._tasks or not all(t.is_alive for t in self._tasks):
                continue  # job is down; skip this checkpoint
            epoch = self._epoch
            yield self.env.service_timeout(SNAPSHOT_PAUSE + CHECKPOINT_COMMIT_COST)
            if epoch != self._epoch:
                continue  # a failure raced the checkpoint: it never completes
            for task_index, source in enumerate(self._sources):
                self._committed_offsets[task_index] = source.position()
            if self.ft.guarantee == EXACTLY_ONCE:
                for task_index in range(self.mp):
                    buffered, self._txn_buffers[task_index] = (
                        self._txn_buffers[task_index],
                        [],
                    )
                    for batch in buffered:
                        self.emit_and_complete(batch)
            self.checkpoints_completed += 1

    # -- failures ---------------------------------------------------------------

    def _failure_injector(self, failure_time: float) -> typing.Generator:
        yield self.env.service_timeout(failure_time)
        if not self._tasks:
            return
        self.failures_injected += 1
        self._epoch += 1
        for task in self._tasks:
            if task.is_alive:
                task.interrupt("injected failure")
        # Open transactions abort: their output is never seen downstream.
        self._txn_buffers = [[] for __ in range(self.mp)]
        self._tasks = []
        yield self.env.service_timeout(self.ft.recovery_time)
        yield from self.tool.load()  # the model is reloaded on restart
        self.restarts += 1
        self._start_job(initial=False)
