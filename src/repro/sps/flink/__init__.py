"""Apache Flink adapter."""

from repro.sps.flink.engine import FlinkProcessor

__all__ = ["FlinkProcessor"]
