"""Apache Flink (§3.4.1): push-based pipelined dataflow.

Two deployment shapes, matching §6.1:

- **Default parallelism** ``flink[N-N-N]``: operator chaining is on, so
  each of the N task slots runs source -> scoring -> sink serially for
  every event (one JVM thread, no handoffs). This is the configuration of
  all headline experiments.
- **Operator-level parallelism** ``flink[S-P-K]`` (chaining disabled):
  S source tasks, P scoring tasks, and K sink tasks connected by bounded
  exchange queues — Flink's network buffer pools — so stages pipeline and
  backpressure propagates through full buffers (Fig. 12).

Large records that exceed Flink's 32 KB network-buffer quota pay a
per-buffer handling cost in the source, which is why Flink loses its
latency edge to Kafka Streams at bsz=512 (Fig. 10, §5.3.2).
"""

from __future__ import annotations

import math
import typing

from repro import calibration as cal
from repro.sps.api import DataProcessor
from repro.sps.gateways import InputEvent
from repro.simul import Resource, Store

#: Capacity of each inter-stage exchange queue (buffer pool slots).
EXCHANGE_CAPACITY = 64


class FlinkProcessor(DataProcessor):
    """The Flink data-processor adapter."""

    name = "flink"
    profile = cal.FLINK_PROFILE

    def __init__(
        self,
        *args: typing.Any,
        operator_parallelism: tuple[int, int, int] | None = None,
        async_io: int = 0,
        scoring_window: int = 0,
        **kwargs: typing.Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.operator_parallelism = operator_parallelism
        # Flink's Async I/O operator (§4.3 disabled it for fairness; we
        # implement it as an ablation): each scoring task may keep up to
        # ``async_io`` external requests in flight instead of blocking.
        if async_io < 0:
            raise ValueError(f"async_io must be >= 0, got {async_io}")
        if async_io and self.tool.kind != "external":
            raise ValueError("async I/O only applies to external serving")
        self.async_io = async_io
        # §7.1 "Micro-batching Support for External Servers": a count
        # window in front of the scoring operator groups up to
        # ``scoring_window`` events into one inference call, flushing
        # early when the stream idles (so low rates keep low latency).
        if scoring_window < 0:
            raise ValueError(f"scoring_window must be >= 0, got {scoring_window}")
        if scoring_window == 1:
            scoring_window = 0  # a window of one is the default path
        self.scoring_window = scoring_window
        if self.scoring_window and self.async_io:
            raise ValueError("scoring_window and async_io do not combine")

    def _spawn_tasks(self) -> None:
        if self.operator_parallelism is None:
            for task in range(self.mp):
                self._spawn(self._chained_task(task, self.mp))
        else:
            sources, scorers, sinks = self.operator_parallelism
            score_queue = Store(self.env, capacity=EXCHANGE_CAPACITY)
            sink_queue = Store(self.env, capacity=EXCHANGE_CAPACITY)
            for stage, queue in (("score", score_queue), ("sink", sink_queue)):
                self.metrics.gauge(
                    "flink_exchange_queue",
                    help="records buffered in the inter-stage exchange",
                    labels={"stage": stage},
                    fn=lambda q=queue: q.level,
                )
                self.metrics.gauge(
                    "flink_backpressure",
                    help="tasks blocked on a full network-buffer pool",
                    labels={"stage": stage},
                    fn=lambda q=queue: len(q._putters),
                )
            for task in range(sources):
                self._spawn(self._source_task(task, sources, score_queue))
            for __ in range(scorers):
                self._spawn(self._scoring_task(score_queue, sink_queue))
            for __ in range(sinks):
                self._spawn(self._sink_task(sink_queue))

    # -- operator bodies ---------------------------------------------------

    def _buffer_penalty(self, nbytes: float) -> float:
        """Per-buffer handling for records spanning many network buffers."""
        if nbytes <= cal.FLINK_BUFFER_BYTES:
            return 0.0
        extra_buffers = math.ceil(nbytes / cal.FLINK_BUFFER_BYTES) - 1
        return extra_buffers * cal.FLINK_PER_BUFFER_COST

    def _source_cost(self, event: InputEvent) -> float:
        return (
            self.profile.source_overhead
            + self.decode_cost(event.batch)
            + self._buffer_penalty(event.nbytes)
        ) * self.slowdown

    def _score(self, event: InputEvent) -> typing.Generator:
        """Returns the scoring result; ``None`` means the resilience layer
        shed the request and the event must not reach the sink."""
        span = self.tracer.begin(event.batch, "flink.score")
        yield self.env.service_timeout(self.profile.score_overhead * self.slowdown)
        result = yield from self.tool.score(event.batch.points, ctx=event.batch)
        self.tracer.end(span)
        return result

    def _sink(self, event: InputEvent) -> typing.Generator:
        batch = event.batch
        span = self.tracer.begin(batch, "flink.sink")
        yield self.env.service_timeout(
            (self.profile.sink_overhead + self.encode_cost(batch)) * self.slowdown
        )
        self.tracer.end(span)
        self.emit_and_complete(batch)

    # -- task loops ----------------------------------------------------------

    def _chained_task(self, member: int, members: int) -> typing.Generator:
        """source -> scoring -> sink fused into one task thread."""
        if self.scoring_window:
            yield from self._windowed_task(member, members)
            return
        source = self._new_source(member, members)
        inflight = Resource(self.env, capacity=self.async_io) if self.async_io else None
        while True:
            events = yield from source.poll()
            polled_at = self.env.now
            for event in events:
                self.tracer.record(event.batch, "flink.task_queue", start=polled_at)
                span = self.tracer.begin(event.batch, "flink.source")
                yield self.env.service_timeout(self._source_cost(event))
                self.tracer.end(span)
                if inflight is None:
                    result = yield from self._score(event)
                    if result is None:
                        self.batches_shed += 1
                        continue
                    yield from self._sink(event)
                else:
                    # Async I/O: park the request with a capacity-bounded
                    # in-flight window; the task moves on to the next event.
                    wait = self.tracer.begin(event.batch, "flink.async_wait")
                    slot = inflight.request()
                    yield slot
                    self.tracer.end(wait)
                    self.env.process(self._async_round_trip(event, inflight, slot))

    def _windowed_task(self, member: int, members: int) -> typing.Generator:
        """Chained task with a count window before the scoring operator.

        Events group into one inference call of up to ``scoring_window``
        events; a partial window flushes as soon as the source has no
        more data ready, so idle streams never wait on a timer.
        """
        source = self._new_source(member, members)
        window: list[InputEvent] = []
        while True:
            events = yield from source.poll()
            polled_at = self.env.now
            for event in events:
                self.tracer.record(event.batch, "flink.task_queue", start=polled_at)
                span = self.tracer.begin(event.batch, "flink.source")
                yield self.env.service_timeout(self._source_cost(event))
                self.tracer.end(span)
                self.tracer.mark(event.batch, "flink.windowed")
                window.append(event)
                if len(window) >= self.scoring_window:
                    yield from self._flush_window(window)
                    window = []
            if window and source.lag() == 0:
                yield from self._flush_window(window)
                window = []

    def _flush_window(self, window: list[InputEvent]) -> typing.Generator:
        for event in window:
            self.tracer.lapse(event.batch, "flink.window_wait", "flink.windowed")
        spans = [
            self.tracer.begin(event.batch, "flink.score", window=len(window))
            for event in window
        ]
        yield self.env.service_timeout(self.profile.score_overhead * self.slowdown)
        total_points = sum(event.batch.points for event in window)
        # ctx = oldest window member, for span attribution and a
        # schedule-independent (content-keyed) noise draw.
        result = yield from self.tool.score(total_points, ctx=window[0].batch)
        for span in spans:
            self.tracer.end(span)
        if result is None:
            self.batches_shed += len(window)
            return
        for event in window:
            yield from self._sink(event)

    def _async_round_trip(self, event: InputEvent, inflight: Resource, slot) -> typing.Generator:
        result = yield from self._score(event)
        inflight.release(slot)
        if result is None:
            self.batches_shed += 1
            return
        yield from self._sink(event)

    def _source_task(self, member: int, members: int, downstream: Store) -> typing.Generator:
        source = self._new_source(member, members)
        while True:
            events = yield from source.poll()
            polled_at = self.env.now
            for event in events:
                self.tracer.record(event.batch, "flink.task_queue", start=polled_at)
                span = self.tracer.begin(event.batch, "flink.source")
                yield self.env.service_timeout(self._source_cost(event))
                self.tracer.end(span)
                wait = self.tracer.begin(event.batch, "flink.buffer_wait")
                # Mark at enqueue, before the put: the downstream task's
                # lapse() is in the same tie class as this task's
                # resumption, so a mark after the yield loses the
                # exchange-wait span when pop order flips.
                self.tracer.mark(event.batch, "flink.exchange")
                yield downstream.put(event)  # blocks when buffers are full
                self.tracer.end(wait)

    def _scoring_task(self, upstream: Store, downstream: Store) -> typing.Generator:
        while True:
            event = yield upstream.get()
            self.tracer.lapse(event.batch, "flink.exchange_wait", "flink.exchange")
            result = yield from self._score(event)
            if result is None:
                self.batches_shed += 1
                continue
            wait = self.tracer.begin(event.batch, "flink.buffer_wait")
            # Enqueue mark precedes the put (same tie-race as above).
            self.tracer.mark(event.batch, "flink.exchange")
            yield downstream.put(event)
            self.tracer.end(wait)

    def _sink_task(self, upstream: Store) -> typing.Generator:
        while True:
            event = yield upstream.get()
            self.tracer.lapse(event.batch, "flink.exchange_wait", "flink.exchange")
            yield from self._sink(event)
