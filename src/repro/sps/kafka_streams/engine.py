"""Kafka Streams (§3.4.1): pull-based per-event DAG traversal.

Each stream thread owns a share of the input topic's partitions and walks
every polled record through the whole topology — consume, transform
(score), produce — before the next record (Fig. 4). The tight broker
integration gives it lower fixed per-event overheads than Flink
(Table 5: 2054 vs 1373 ev/s with ONNX), but each poll cycle pays a fixed
bookkeeping interval (commit/rebalance checks), which shows up as a
latency floor at very low input rates (Fig. 10, small batches).
"""

from __future__ import annotations

import typing

from repro import calibration as cal
from repro.sps.api import DataProcessor
from repro.sps.gateways import InputEvent


class KafkaStreamsProcessor(DataProcessor):
    """The Kafka Streams data-processor adapter."""

    name = "kafka_streams"
    profile = cal.KAFKA_STREAMS_PROFILE

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        super().__init__(*args, **kwargs)
        # Lives across restarts: _spawn_tasks runs again after recovery
        # and must not reset the cumulative counter.
        self.poll_cycles = 0

    @property
    def slowdown(self) -> float:
        """Kafka Streams' pull model fetches straight from partitions per
        thread, distributing work with less cross-thread friction than
        Flink's push/buffer machinery — the paper's explanation for its
        better embedded scaling (§5.3.3). Engine-internal contention is
        still charged inside the serving tool itself."""
        if self.tool.kind == "embedded":
            return 1.0 + cal.KAFKA_STREAMS_ALPHA * (self.mp - 1)
        return 1.0

    def _spawn_tasks(self) -> None:
        self.metrics.counter(
            "kafka_streams_poll_cycles",
            help="poll cycles executed across all stream threads",
            fn=lambda: self.poll_cycles,
        )
        for thread in range(self.mp):
            self._spawn(self._stream_thread(thread, self.mp))

    def _stream_thread(self, member: int, members: int) -> typing.Generator:
        source = self._new_source(member, members)
        while True:
            events = yield from source.poll()
            self.poll_cycles += 1
            polled_at = self.env.now
            # Poll-cycle bookkeeping (offset commits, rebalance liveness):
            # a fixed cost per cycle, amortized across the cycle's records.
            yield self.env.service_timeout(cal.KAFKA_STREAMS_POLL_INTERVAL)
            for event in events:
                self.tracer.record(event.batch, "kafka_streams.poll", start=polled_at)
                yield from self._process_one(event)

    def _process_one(self, event: InputEvent) -> typing.Generator:
        batch = event.batch
        consume = (self.profile.source_overhead + self.decode_cost(batch)) * self.slowdown
        span = self.tracer.begin(batch, "kafka_streams.consume")
        yield self.env.service_timeout(consume)
        self.tracer.end(span)
        span = self.tracer.begin(batch, "kafka_streams.score")
        yield self.env.service_timeout(self.profile.score_overhead * self.slowdown)
        result = yield from self.tool.score(batch.points, ctx=batch)
        self.tracer.end(span)
        if result is None:  # shed by the resilience layer
            self.batches_shed += 1
            return
        produce = (self.profile.sink_overhead + self.encode_cost(batch)) * self.slowdown
        span = self.tracer.begin(batch, "kafka_streams.produce")
        yield self.env.service_timeout(produce)
        self.tracer.end(span)
        self.emit_and_complete(batch)
