"""Kafka Streams adapter."""

from repro.sps.kafka_streams.engine import KafkaStreamsProcessor

__all__ = ["KafkaStreamsProcessor"]
