"""The scraper: periodic snapshots of every registered instrument.

A simulation process wakes every ``interval`` simulated seconds and
records each instrument's instantaneous value into a
:class:`~repro.simul.monitor.TimeSeries` — the Prometheus pull model
transplanted into simulated time. Instruments registered *after* the
scraper starts (topics created mid-wiring, sources spawned after model
load) are picked up on their first scrape.

Scraping is observational: each tick only schedules its own timeout and
reads component state through gauge callbacks. Extra timeouts shift the
event heap's sequence numbers uniformly, which preserves the relative
order of all pipeline events, so scraped runs remain byte-identical to
unscraped ones.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.metrics.registry import (
    Instrument,
    Labels,
    MetricsOptions,
    MetricsRegistry,
)
from repro.simul.monitor import TimeSeries

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.core import Environment


class Scraper:
    """Samples every instrument of ``registry`` at a fixed interval.

    ``horizon`` bounds the scrape loop (the experiment runner passes the
    run duration); ``None`` keeps scraping for as long as the simulation
    is driven with ``run(until=...)``.
    """

    def __init__(
        self,
        env: "Environment",
        registry: MetricsRegistry,
        interval: float = MetricsOptions.scrape_interval,
        horizon: float | None = None,
    ) -> None:
        options = MetricsOptions(scrape_interval=interval)
        self.env = env
        self.registry = registry
        self.interval = options.scrape_interval
        self.horizon = horizon
        self.scrapes = 0
        self._series: dict[tuple[str, Labels], TimeSeries] = {}

    def start(self) -> None:
        self.env.process(self._run())

    def _run(self) -> typing.Generator:
        while self.horizon is None or self.env.now < self.horizon:
            yield self.env.service_timeout(self.interval)
            self.scrape()

    def scrape(self) -> None:
        """Record one sample per instrument, at the current time."""
        self.scrapes += 1
        for instrument in self.registry.instruments():
            series = self._series.get(instrument.key)
            if series is None:
                series = TimeSeries(self.env, instrument.series_name)
                self._series[instrument.key] = series
            series.record(instrument.value())

    # -- queries ---------------------------------------------------------

    def series(self) -> dict[str, TimeSeries]:
        """Scraped timeline per series name (``name{labels}``)."""
        return {ts.name: ts for ts in self._series.values()}

    def series_of(self, instrument: Instrument) -> TimeSeries | None:
        return self._series.get(instrument.key)

    def timeline(self) -> list[tuple[str, dict[str, str], TimeSeries]]:
        """(metric name, labels, scraped series) per instrument."""
        return [
            (name, dict(labels), ts)
            for (name, labels), ts in self._series.items()
        ]


@dataclasses.dataclass(frozen=True)
class Telemetry:
    """Everything a metrics-on run collected, as carried on the result."""

    registry: MetricsRegistry
    scraper: Scraper

    def series(self) -> dict[str, TimeSeries]:
        return self.scraper.series()

    def last_values(self) -> dict[str, float]:
        """Final value per series name (registry state at run end)."""
        return {
            i.series_name: i.value() for i in self.registry.instruments()
        }
