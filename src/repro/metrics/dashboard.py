"""A terminal dashboard over scraped telemetry.

One sparkline row per scraped series (min/last/max annotated), grouped by
layer — broker, engine, serving, pipeline — plus a backpressure/lag
summary that surfaces the queueing signals (consumer lag, queue depths,
mailbox occupancy, blocked producers) an operator would watch first on a
live system.
"""

from __future__ import annotations

import math
import typing

from repro.metrics.scraper import Scraper

SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Series name fragments that indicate queueing/backpressure signals.
PRESSURE_MARKERS = ("lag", "queue", "backpressure", "mailbox", "backlog")

#: Display order of layer groups (by series-name prefix after the
#: namespace); anything unmatched lands in "other".
_GROUPS = (
    ("broker", ("broker_",)),
    ("engine", ("engine_", "flink_", "spark_", "ray_", "kafka_streams_")),
    ("serving", ("serving_", "autoscaler_")),
    ("pipeline", ("pipeline_",)),
)


def sparkline(values: typing.Sequence[float], width: int = 40) -> str:
    """Render ``values`` as a fixed-width unicode sparkline.

    Series longer than ``width`` are downsampled by striding; flat
    series render at the lowest level.
    """
    points = [v for v in values if not math.isnan(v)]
    if not points:
        return " " * width
    if len(points) > width:
        stride = len(points) / width
        points = [points[int(i * stride)] for i in range(width)]
    low, high = min(points), max(points)
    span = high - low
    chars = []
    for value in points:
        if span == 0:
            level = 0
        else:
            level = int((value - low) / span * (len(SPARK_CHARS) - 1))
        chars.append(SPARK_CHARS[level])
    return "".join(chars).ljust(width)


def _format_number(value: float) -> str:
    if math.isnan(value):
        return "nan"
    if abs(value) >= 10000:
        return f"{value / 1000:.1f}k"
    if abs(value) >= 100 or value == int(value):
        return f"{value:.0f}"
    return f"{value:.2f}"


def _strip_namespace(name: str) -> str:
    return name.split("_", 1)[1] if name.startswith("crayfish_") else name


def _group_of(name: str) -> str:
    bare = _strip_namespace(name)
    for group, prefixes in _GROUPS:
        if bare.startswith(prefixes):
            return group
    return "other"


def render_dashboard(
    scraper: Scraper, width: int = 40, title: str = ""
) -> str:
    """The full dashboard as a printable string."""
    timeline = scraper.timeline()
    if not timeline:
        return "(no metrics scraped)"
    rows: list[tuple[str, str, list[float]]] = []
    for name, labels, series in timeline:
        label = _strip_namespace(name)
        if labels:
            inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            label = f"{label}{{{inner}}}"
        rows.append((_group_of(name), label, list(series.values)))
    rows.sort(key=lambda r: (r[0], r[1]))
    name_width = max(len(label) for __, label, __v in rows)

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"{scraper.scrapes} scrapes every {scraper.interval:g}s simulated"
    )
    current_group = None
    for group, label, values in rows:
        if group != current_group:
            current_group = group
            lines.append("")
            lines.append(f"-- {group} " + "-" * max(width - len(group) - 4, 0))
        last = values[-1] if values else math.nan
        peak = max(values) if values else math.nan
        lines.append(
            f"{label.ljust(name_width)} {sparkline(values, width)} "
            f"last {_format_number(last).rjust(6)}  "
            f"max {_format_number(peak).rjust(6)}"
        )
    summary = backpressure_summary(scraper)
    if summary:
        lines.append("")
        lines.append("backpressure & lag summary:")
        lines.extend(f"  {line}" for line in summary)
    return "\n".join(lines)


def backpressure_summary(scraper: Scraper) -> list[str]:
    """Queueing signals ranked by peak value, one line each."""
    pressured: list[tuple[float, float, str]] = []
    for name, labels, series in scraper.timeline():
        bare = _strip_namespace(name)
        if not any(marker in bare for marker in PRESSURE_MARKERS):
            continue
        values = list(series.values)
        if not values:
            continue
        peak = max(values)
        pressured.append((peak, values[-1], bare))
    pressured.sort(key=lambda item: (-item[0], item[2]))
    lines = []
    for peak, last, name in pressured:
        state = "idle" if peak == 0 else ("drained" if last == 0 else "queued")
        lines.append(
            f"{name}: peak {_format_number(peak)}, "
            f"last {_format_number(last)} ({state})"
        )
    return lines
