"""Metrics exporters: OpenMetrics text exposition and a JSONL timeline.

The OpenMetrics export is the registry's *final* state in the standard
text format (one ``# TYPE``/``# HELP`` block per metric family, counter
samples suffixed ``_total``, histogram ``_bucket{le=...}``/``_sum``/
``_count`` series, terminated by ``# EOF``) — parseable by any
Prometheus-ecosystem tool. The JSONL export is the scraped *timeline*:
one JSON object per sample, the machine-readable twin of the dashboard.

:func:`parse_openmetrics` is the validating reader the CI smoke job and
tests use: it checks line format, family/TYPE consistency, and rejects
duplicate series.
"""

from __future__ import annotations

import json
import math
import re
import statistics
import typing

from repro.metrics.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.metrics.scraper import Scraper

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(labels: typing.Sequence[tuple[str, str]]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"


def openmetrics_text(registry: MetricsRegistry) -> str:
    """The registry's current state in OpenMetrics text format."""
    lines: list[str] = []
    seen_families: set[str] = set()
    for instrument in registry.instruments():
        family = instrument.name
        if family not in seen_families:
            seen_families.add(family)
            lines.append(f"# TYPE {family} {instrument.type}")
            if instrument.help:
                lines.append(f"# HELP {family} {instrument.help}")
        labels = instrument.labels
        if isinstance(instrument, Counter):
            lines.append(
                f"{family}_total{_label_str(labels)} "
                f"{_format_value(instrument.value())}"
            )
        elif isinstance(instrument, Gauge):
            lines.append(
                f"{family}{_label_str(labels)} "
                f"{_format_value(instrument.value())}"
            )
        elif isinstance(instrument, Histogram):
            for bound, cumulative in instrument.cumulative_buckets():
                le = "+Inf" if bound == math.inf else repr(bound)
                bucket_labels = tuple(labels) + (("le", le),)
                lines.append(
                    f"{family}_bucket{_label_str(bucket_labels)} {cumulative}"
                )
            lines.append(
                f"{family}_sum{_label_str(labels)} "
                f"{_format_value(instrument.sum)}"
            )
            lines.append(f"{family}_count{_label_str(labels)} {instrument.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def save_openmetrics(registry: MetricsRegistry, path: str) -> None:
    """Write the OpenMetrics exposition to ``path``."""
    with open(path, "w") as handle:
        handle.write(openmetrics_text(registry))


def timeline_rows(scraper: Scraper) -> list[dict]:
    """One flat dict per scraped sample, in time order."""
    rows = []
    for name, labels, series in scraper.timeline():
        for t, value in zip(series.times, series.values):
            rows.append({"t": t, "metric": name, "labels": labels, "value": value})
    rows.sort(key=lambda r: r["t"])
    return rows


def series_summaries(scraper: Scraper) -> dict[str, dict]:
    """Collapse each scraped series to last/peak/mean/samples.

    The compact per-series shape the benchmark telemetry baseline
    (``BENCH_metrics.json``) and the results database's ``series`` table
    store: enough to spot shifted queue peaks or lag without keeping the
    full timeline. Series that never collected a sample are omitted.
    """
    summaries: dict[str, dict] = {}
    for name, ts in sorted(scraper.series().items()):
        values = list(ts.values)
        if not values:
            continue
        summaries[name] = {
            "last": values[-1],
            "peak": max(values),
            "mean": statistics.fmean(values),
            "samples": len(values),
        }
    return summaries


def save_metrics_jsonl(scraper: Scraper, path: str) -> None:
    """Write the scraped timeline as JSON Lines (one sample per line)."""
    with open(path, "w") as handle:
        for row in timeline_rows(scraper):
            handle.write(json.dumps(row) + "\n")


def load_metrics_jsonl(path: str) -> list[dict]:
    """Read back a JSONL timeline (round-trip convenience)."""
    rows = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


@typing.no_type_check
def parse_openmetrics(text: str) -> dict[str, dict]:
    """Validating OpenMetrics reader.

    Returns ``{family: {"type": ..., "samples": {series: value}}}``.
    Raises ``ValueError`` on malformed lines, samples that belong to no
    declared family, duplicate series, or a missing ``# EOF`` terminator.
    """
    families: dict[str, dict] = {}
    seen_series: set[str] = set()
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line.strip():
            raise ValueError(f"line {lineno}: blank lines are not allowed")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            __, kind, family = parts[0], parts[1], parts[2]
            if not _NAME.match(family):
                raise ValueError(f"line {lineno}: bad metric name {family!r}")
            if kind == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: TYPE needs a metric type")
                if family in families:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {family}")
                families[family] = {"type": parts[3], "samples": {}}
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        label_text = match.group("labels")
        if label_text:
            for pair in label_text.split(","):
                if not _LABEL.match(pair):
                    raise ValueError(f"line {lineno}: malformed label {pair!r}")
        value_text = match.group("value")
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {value_text!r}"
            ) from None
        family = _family_of(name, families)
        if family is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        series = f"{name}{{{label_text}}}" if label_text else name
        if series in seen_series:
            raise ValueError(f"line {lineno}: duplicate series {series!r}")
        seen_series.add(series)
        families[family]["samples"][series] = value
    return families


def _family_of(sample_name: str, families: dict[str, dict]) -> str | None:
    """Resolve a sample name to its metric family (handles the counter
    ``_total`` and histogram ``_bucket``/``_sum``/``_count`` suffixes)."""
    if sample_name in families:
        return sample_name
    for suffix in ("_total", "_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            family = sample_name[: -len(suffix)]
            if family in families:
                return family
    return None
