"""Whole-system telemetry in simulated time.

Tracing (:mod:`repro.tracing`) answers *where did this record's time go*;
this package answers *what was the system doing when it went there*. A
:class:`~repro.metrics.registry.MetricsRegistry` holds typed instruments
(counters, gauges, histograms) registered by every layer — broker, the
four SPS engines, serving — and a
:class:`~repro.metrics.scraper.Scraper` process snapshots them at a fixed
simulated interval, producing per-metric time series.

Like tracing, telemetry is strictly observational: gauges are callbacks
evaluated only at scrape time, the scraper's events never touch pipeline
state, and no instrument draws from an RNG stream — so a metrics-on run
produces byte-identical experiment results to a metrics-off run (the
determinism regression tests assert this for all four engines).
"""

from repro.metrics.registry import (
    NO_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsOptions,
    MetricsRegistry,
    NullRegistry,
    log_buckets,
    make_registry,
)
from repro.metrics.scraper import Scraper, Telemetry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsOptions",
    "MetricsRegistry",
    "NullRegistry",
    "NO_METRICS",
    "Scraper",
    "Telemetry",
    "log_buckets",
    "make_registry",
]
