"""The metrics registry and its typed instruments.

Prometheus/OpenMetrics-flavoured, recorded in simulated time:

- :class:`Counter` — a monotonically increasing total. Either incremented
  explicitly (``inc``) or backed by a callback reading a cumulative value
  a component already maintains (``fn=lambda: consumer.records_consumed``).
- :class:`Gauge` — a value that goes up and down. Almost every gauge in
  this repository is callback-backed (queue depth, resource utilization,
  consumer lag): the callable is evaluated *only when scraped or
  exported*, so instrumented components pay nothing on the hot path.
- :class:`Histogram` — observations bucketed into fixed log-spaced
  boundaries (latencies and batch sizes span orders of magnitude, so
  linear buckets would waste resolution).

Series identity is ``(name, labels)``: registering the same identity
twice returns the existing instrument (component wiring is idempotent);
re-registering under a different type is a configuration error.

The :data:`NO_METRICS` null registry mirrors :data:`~repro.tracing.spans
.NO_TRACE`: components default to it, every registration returns a shared
no-op instrument, and nothing is allocated or recorded.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import typing

from repro.errors import ConfigError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.core import Environment

Labels = typing.Tuple[typing.Tuple[str, str], ...]


def log_buckets(start: float, stop: float, count: int = 12) -> tuple[float, ...]:
    """``count`` log-spaced bucket upper bounds from ``start`` to ``stop``."""
    if start <= 0 or stop <= start:
        raise ConfigError(f"need 0 < start < stop, got [{start}, {stop}]")
    if count < 2:
        raise ConfigError(f"need >= 2 buckets, got {count}")
    ratio = (stop / start) ** (1.0 / (count - 1))
    return tuple(start * ratio**i for i in range(count))


#: Default histogram boundaries: 0.1 ms .. 10 s, 16 log-spaced buckets.
DEFAULT_BUCKETS = log_buckets(1e-4, 10.0, 16)


def _freeze_labels(labels: dict[str, str] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Instrument:
    """Shared identity/metadata for one time series."""

    type: str = ""

    def __init__(
        self,
        env: "Environment",
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
    ) -> None:
        self.env = env
        self.name = name
        self.help = help
        self.labels: Labels = _freeze_labels(labels)

    @property
    def key(self) -> tuple[str, Labels]:
        return (self.name, self.labels)

    @property
    def series_name(self) -> str:
        """``name{label="value",...}`` — the exported series identity."""
        if not self.labels:
            return self.name
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return f"{self.name}{{{inner}}}"

    def value(self) -> float:
        """The instantaneous value a scrape records."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.series_name})"


class Counter(Instrument):
    """A monotonically increasing total (requests served, batches done)."""

    type = "counter"

    def __init__(
        self,
        env: "Environment",
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        fn: typing.Callable[[], float] | None = None,
    ) -> None:
        super().__init__(env, name, help, labels)
        self._fn = fn
        self._total = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise ConfigError(f"{self.name}: callback counters cannot inc()")
        if amount < 0:
            raise ConfigError(f"{self.name}: counters only count upward")
        self._total += amount

    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._total


class Gauge(Instrument):
    """A value that can rise and fall (queue depth, lag, utilization)."""

    type = "gauge"

    def __init__(
        self,
        env: "Environment",
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        fn: typing.Callable[[], float] | None = None,
    ) -> None:
        super().__init__(env, name, help, labels)
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ConfigError(f"{self.name}: callback gauges cannot set()")
        self._value = float(value)

    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Histogram(Instrument):
    """Observations in fixed log-spaced buckets (+Inf is implicit).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` exclusively
    of earlier buckets; cumulative counts (the OpenMetrics convention)
    are computed at export time.
    """

    type = "histogram"

    def __init__(
        self,
        env: "Environment",
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: typing.Sequence[float] | None = None,
    ) -> None:
        super().__init__(env, name, help, labels)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigError(f"{name}: bucket bounds must strictly increase")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise ConfigError(f"{self.name}: cannot observe NaN")
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def value(self) -> float:
        """Scrapes record the running observation count (the timeline
        shows arrival rate; the full distribution exports at run end)."""
        return float(self.count)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan


@dataclasses.dataclass(frozen=True)
class MetricsOptions:
    """User-facing telemetry knobs (the runner builds the registry)."""

    #: Simulated seconds between scrapes.
    scrape_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.scrape_interval <= 0:
            raise ConfigError(
                f"scrape_interval must be positive, got {self.scrape_interval}"
            )


class NullInstrument:
    """The shared no-op instrument every NullRegistry call returns."""

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = NullInstrument()


class NullRegistry:
    """Metrics disabled: registrations are accepted and discarded.

    Instrumentation sites register unconditionally; with this singleton
    installed no series exists, nothing is recorded, and callback gauges
    are never evaluated.
    """

    enabled = False

    def counter(self, name, help="", labels=None, fn=None) -> NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labels=None, fn=None) -> NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", labels=None, buckets=None) -> NullInstrument:
        return _NULL_INSTRUMENT

    def instruments(self) -> tuple:
        return ()


#: The shared "metrics off" instance; components default to it.
NO_METRICS = NullRegistry()


class MetricsRegistry:
    """Central, namespaced registry of every instrument in one run."""

    enabled = True

    def __init__(self, env: "Environment", namespace: str = "crayfish") -> None:
        self.env = env
        self.namespace = namespace
        self._instruments: dict[tuple[str, Labels], Instrument] = {}

    # -- registration ----------------------------------------------------

    def _register(self, cls: type, name: str, labels, **kwargs) -> Instrument:
        if self.namespace:
            name = f"{self.namespace}_{name}"
        key = (name, _freeze_labels(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigError(
                    f"{name}: registered as {existing.type}, requested "
                    f"{cls.type}"  # type: ignore[attr-defined]
                )
            return existing
        instrument = cls(self.env, name, labels=labels, **kwargs)
        self._instruments[key] = instrument
        return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        fn: typing.Callable[[], float] | None = None,
    ) -> Counter:
        return typing.cast(
            Counter, self._register(Counter, name, labels, help=help, fn=fn)
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        fn: typing.Callable[[], float] | None = None,
    ) -> Gauge:
        return typing.cast(
            Gauge, self._register(Gauge, name, labels, help=help, fn=fn)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: typing.Sequence[float] | None = None,
    ) -> Histogram:
        return typing.cast(
            Histogram,
            self._register(Histogram, name, labels, help=help, buckets=buckets),
        )

    # -- queries ---------------------------------------------------------

    def instruments(self) -> tuple[Instrument, ...]:
        """Every registered instrument, in registration order."""
        return tuple(self._instruments.values())

    def get(self, name: str, labels: dict[str, str] | None = None) -> Instrument:
        if self.namespace and not name.startswith(f"{self.namespace}_"):
            name = f"{self.namespace}_{name}"
        try:
            return self._instruments[(name, _freeze_labels(labels))]
        except KeyError:
            raise ConfigError(f"no instrument {name!r} with labels {labels}") from None

    def __len__(self) -> int:
        return len(self._instruments)


def make_registry(
    env: "Environment", metrics: typing.Any
) -> MetricsRegistry | NullRegistry:
    """Resolve the runner's ``metrics`` argument to a registry instance.

    Accepts ``None``/``False`` (off), ``True`` (defaults, the options
    only parameterize the scraper), :class:`MetricsOptions`, or a ready
    registry.
    """
    if metrics is None or metrics is False:
        return NO_METRICS
    if metrics is True or isinstance(metrics, MetricsOptions):
        return MetricsRegistry(env)
    if isinstance(metrics, (MetricsRegistry, NullRegistry)):
        return metrics
    raise ConfigError(f"cannot build a metrics registry from {metrics!r}")
