"""Per-run fault/resilience accounting attached to experiment results."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class FaultSummary:
    """What the fault subsystem did during one run.

    Populated on :class:`~repro.core.runner.ExperimentResult` whenever a
    fault plan, a resilience policy, or checkpoint/replay recovery was
    active; None otherwise.
    """

    #: Fault injections, per class.
    server_crashes: int = 0
    partition_outages: int = 0
    network_degradations: int = 0
    stragglers: int = 0
    #: Engine-level checkpoint/replay recovery (any engine).
    engine_failures: int = 0
    engine_restarts: int = 0
    checkpoints: int = 0
    #: Client-side resilience layer activity.
    retries: int = 0
    timeouts: int = 0
    shed: int = 0
    fallbacks: int = 0
    breaker_opens: int = 0
    breaker_fast_fails: int = 0

    @property
    def faults_injected(self) -> int:
        return (
            self.server_crashes
            + self.partition_outages
            + self.network_degradations
            + self.stragglers
            + self.engine_failures
        )
