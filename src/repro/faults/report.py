"""Chaos scenarios: paired baseline/faulted runs with recovery analysis.

:func:`run_chaos_scenario` executes one configuration twice — once with
every fault and recovery knob stripped (the baseline) and once as given —
and reports goodput retention plus the post-fault latency recovery time,
reusing the burst-recovery analyzer on the fault window.
"""

from __future__ import annotations

import dataclasses

from repro.config import ExperimentConfig
from repro.core.analyzer import RecoveryReport, recovery_time
from repro.core.runner import ExperimentResult, ExperimentRunner


@dataclasses.dataclass(frozen=True)
class ChaosOutcome:
    """One chaos scenario: the faulted run against its clean baseline."""

    baseline: ExperimentResult
    faulted: ExperimentResult
    #: Measured-window throughput of the faulted run relative to the
    #: baseline (1.0 = the faults cost nothing downstream).
    goodput_ratio: float
    #: Latency recovery after the first fault window; None when the run
    #: had no fault window or too few samples to analyze.
    recovery: RecoveryReport | None

    @property
    def recovered(self) -> bool:
        """Did latency restabilize within the observation horizon?"""
        return self.recovery is not None and self.recovery.recovery_time is not None


def _fault_windows(config: ExperimentConfig) -> list[tuple[float, float]]:
    """Every injected-fault window: the plan's plus engine failures."""
    windows: list[tuple[float, float]] = []
    if config.fault_plan is not None:
        windows.extend(config.fault_plan.windows())
    for failure_time in config.failure_times:
        windows.append((failure_time, failure_time + config.recovery_time))
    return sorted(windows)


def run_chaos_scenario(
    config: ExperimentConfig,
    seed: int | None = None,
    threshold_factor: float = 2.0,
    dwell: float = 0.5,
) -> ChaosOutcome:
    """Run ``config`` and its fault-free twin; compare.

    The baseline strips the fault plan, the resilience policy, and the
    engine failure times but keeps checkpointing if configured, so the
    comparison isolates the *faults*, not the steady-state overheads.
    """
    baseline_config = config.replace(
        fault_plan=None, resilience=None, failure_times=()
    )
    baseline = ExperimentRunner(baseline_config).run(seed=seed)
    faulted = ExperimentRunner(config).run(seed=seed)
    ratio = (
        faulted.throughput / baseline.throughput
        if baseline.throughput > 0
        else float("nan")
    )
    windows = _fault_windows(config)
    recovery = None
    if windows:
        start = windows[0][0]
        end = max(w[1] for w in windows)
        try:
            recovery = recovery_time(
                faulted.series,
                burst_start=start,
                burst_end=min(end, config.duration),
                horizon=config.duration,
                threshold_factor=threshold_factor,
                dwell=dwell,
            )
        except (ValueError, ZeroDivisionError):
            recovery = None  # degenerate window or too few samples
    return ChaosOutcome(
        baseline=baseline,
        faulted=faulted,
        goodput_ratio=ratio,
        recovery=recovery,
    )
