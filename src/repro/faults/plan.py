"""Fault plans and resilience policies: the *configuration* of chaos.

Everything in this module is a frozen dataclass with no simulation
dependencies, so :mod:`repro.config` can embed these values while staying
a leaf module. The machinery that executes a plan lives in
:mod:`repro.faults.injectors` / :mod:`repro.faults.resilience`.

All injected faults are scheduled at fixed simulated times from the
experiment's :class:`FaultPlan`, and any randomness (retry jitter,
network error rolls) draws from named seeded streams — so a chaos run is
exactly as reproducible as a fault-free one.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError

#: Logical topic roles a partition outage can target; the runner maps
#: them onto the concrete topic names it created.
TOPIC_ROLES = ("input", "output")

#: Degradation policies once retries are exhausted (or disabled).
DEGRADATION_MODES = ("shed", "fallback", "raise")


@dataclasses.dataclass(frozen=True)
class ServerCrash:
    """The external serving process dies and later restarts.

    In-flight requests fail immediately. With ``drop_queue`` the server's
    ingress queue is lost too (a process crash); without it the queue
    survives and drains after restart (a container restart behind a
    persistent service queue). After ``downtime`` the server restarts and
    reloads its model (the reload is charged on top of the downtime).
    """

    at: float
    downtime: float = 0.5
    drop_queue: bool = True

    def __post_init__(self) -> None:
        if self.at <= 0:
            raise ConfigError(f"fault time must be positive, got {self.at}")
        if self.downtime < 0:
            raise ConfigError(f"downtime must be non-negative, got {self.downtime}")


@dataclasses.dataclass(frozen=True)
class PartitionOutage:
    """Broker partitions become unavailable for a window.

    Appends to the affected partitions block until the outage ends
    (leader election restores the partition); fetches return nothing.
    ``topic`` is a logical role ("input" or "output"), resolved to the
    concrete topic name by the runner.
    """

    at: float
    duration: float
    topic: str = "input"
    partitions: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        object.__setattr__(self, "partitions", tuple(self.partitions))
        if self.at <= 0:
            raise ConfigError(f"fault time must be positive, got {self.at}")
        if self.duration <= 0:
            raise ConfigError(f"outage duration must be positive, got {self.duration}")
        if self.topic not in TOPIC_ROLES:
            raise ConfigError(
                f"outage topic must be one of {TOPIC_ROLES}, got {self.topic!r}"
            )
        if not self.partitions or any(p < 0 for p in self.partitions):
            raise ConfigError("partitions must be a non-empty tuple of indices >= 0")


@dataclasses.dataclass(frozen=True)
class NetworkDegradation:
    """The SPS <-> serving link degrades for a window.

    ``extra_latency`` is added to each one-way transfer of the RPC
    channel; ``error_rate`` is the probability a request is dropped
    (connection reset) after its transfer — rolled from a seeded stream.
    """

    at: float
    duration: float
    extra_latency: float = 0.0
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.at <= 0:
            raise ConfigError(f"fault time must be positive, got {self.at}")
        if self.duration <= 0:
            raise ConfigError(f"degradation duration must be positive, got {self.duration}")
        if self.extra_latency < 0:
            raise ConfigError("extra_latency must be non-negative")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ConfigError(f"error_rate must be in [0, 1], got {self.error_rate}")
        if self.extra_latency == 0.0 and self.error_rate == 0.0:
            raise ConfigError("degradation must add latency or errors (or both)")


@dataclasses.dataclass(frozen=True)
class StragglerReplica:
    """One serving worker slows down for a window (a noisy neighbour).

    Inference on worker ``worker % mp`` takes ``slowdown`` times longer
    while the window is open; requests on that worker straggle but do not
    fail.
    """

    at: float
    duration: float
    slowdown: float = 4.0
    worker: int = 0

    def __post_init__(self) -> None:
        if self.at <= 0:
            raise ConfigError(f"fault time must be positive, got {self.at}")
        if self.duration <= 0:
            raise ConfigError(f"straggler duration must be positive, got {self.duration}")
        if self.slowdown < 1.0:
            raise ConfigError(f"slowdown must be >= 1, got {self.slowdown}")
        if self.worker < 0:
            raise ConfigError(f"worker index must be >= 0, got {self.worker}")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Every fault injected into one run, scheduled in simulated time."""

    server_crashes: tuple[ServerCrash, ...] = ()
    partition_outages: tuple[PartitionOutage, ...] = ()
    network_degradations: tuple[NetworkDegradation, ...] = ()
    stragglers: tuple[StragglerReplica, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "server_crashes", tuple(self.server_crashes))
        object.__setattr__(self, "partition_outages", tuple(self.partition_outages))
        object.__setattr__(
            self, "network_degradations", tuple(self.network_degradations)
        )
        object.__setattr__(self, "stragglers", tuple(self.stragglers))

    @property
    def empty(self) -> bool:
        return not (
            self.server_crashes
            or self.partition_outages
            or self.network_degradations
            or self.stragglers
        )

    @property
    def touches_serving(self) -> bool:
        """True when any fault targets the external serving path."""
        return bool(
            self.server_crashes or self.network_degradations or self.stragglers
        )

    @property
    def can_fail_requests(self) -> bool:
        """True when a scoring call may raise a TransientError — the runner
        installs a default shed policy then, so an unhandled fault never
        crashes an engine task."""
        return bool(self.server_crashes) or any(
            d.error_rate > 0 for d in self.network_degradations
        )

    def windows(self) -> list[tuple[float, float]]:
        """(start, end) of every fault window, for recovery analysis."""
        spans: list[tuple[float, float]] = []
        for crash in self.server_crashes:
            spans.append((crash.at, crash.at + crash.downtime))
        for outage in self.partition_outages:
            spans.append((outage.at, outage.at + outage.duration))
        for degradation in self.network_degradations:
            spans.append((degradation.at, degradation.at + degradation.duration))
        for straggler in self.stragglers:
            spans.append((straggler.at, straggler.at + straggler.duration))
        return sorted(spans)


@dataclasses.dataclass(frozen=True)
class ResiliencePolicy:
    """Client-side resilience wrapped around external scoring calls.

    The defaults are deliberately inert: no timeout, no retries, shed on
    failure. A policy only changes behaviour when a fault actually fails
    a request — fault-free runs under any policy are byte-identical to
    unwrapped runs.
    """

    #: Client-side deadline per attempt (seconds); None never times out.
    timeout: float | None = None
    #: Retries after the first failed attempt (0 = fail straight to the
    #: degradation mode).
    retries: int = 0
    #: First backoff delay; doubles (``backoff_factor``) per retry up to
    #: ``backoff_max``.
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    #: Relative jitter on each backoff delay, drawn from the seeded
    #: "resilience.jitter" stream; 0 disables the draw entirely.
    jitter: float = 0.1
    #: Consecutive failures that open the circuit breaker; None disables
    #: the breaker.
    breaker_threshold: int | None = None
    #: Seconds an open breaker waits before letting one half-open probe
    #: through.
    breaker_reset: float = 0.5
    #: What to do when retries are exhausted (or the breaker is open):
    #: "shed" drops the batch, "fallback" scores on an embedded library,
    #: "raise" propagates (kills the scoring task — for experiments).
    on_exhausted: str = "shed"
    #: Embedded serving tool used by the "fallback" mode.
    fallback: str | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base <= 0 or self.backoff_max <= 0:
            raise ConfigError("backoff_base and backoff_max must be positive")
        if self.backoff_factor < 1.0:
            raise ConfigError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ConfigError("breaker_threshold must be >= 1")
        if self.breaker_reset <= 0:
            raise ConfigError("breaker_reset must be positive")
        if self.on_exhausted not in DEGRADATION_MODES:
            raise ConfigError(
                f"on_exhausted must be one of {DEGRADATION_MODES}, "
                f"got {self.on_exhausted!r}"
            )
        if self.on_exhausted == "fallback" and self.fallback is None:
            raise ConfigError("on_exhausted='fallback' needs a fallback tool name")
        if self.fallback is not None and self.on_exhausted != "fallback":
            raise ConfigError("fallback is only used with on_exhausted='fallback'")
