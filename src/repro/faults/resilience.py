"""Client-side resilience for external scoring calls (§7.2 made real).

:class:`ResilientScorer` wraps a serving tool's ``score`` coroutine with
the standard microservice-client defence stack: per-attempt timeouts,
exponential backoff retries with seeded jitter, a circuit breaker with
half-open probing, and graceful degradation once retries are exhausted —
shed the batch, fall back to an embedded library, or propagate.

The wrapper is transparent on the happy path: with no timeout configured
it delegates straight into the inner coroutine, scheduling no extra
events and drawing no randomness, so fault-free runs stay byte-identical
to unwrapped ones.
"""

from __future__ import annotations

import typing

from repro.errors import TransientError
from repro.faults.plan import ResiliencePolicy
from repro.simul import Environment, Event

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simul import RandomStreams


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    closed -> open after ``threshold`` consecutive failures; open ->
    half-open after ``reset_after`` seconds, letting exactly one probe
    through; the probe's outcome closes or re-opens the circuit.
    ``threshold=None`` disables the breaker (always closed).
    """

    def __init__(
        self, env: Environment, threshold: int | None, reset_after: float
    ) -> None:
        self.env = env
        self.threshold = threshold
        self.reset_after = reset_after
        self.state = "closed"
        self.opens = 0
        self.fast_fails = 0
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    def allow(self) -> bool:
        """May a request go out now? (False = fail fast.)"""
        if self.threshold is None or self.state == "closed":
            return True
        if self.state == "open":
            if self.env.now - self._opened_at >= self.reset_after:
                self.state = "half_open"
                self._probe_in_flight = True
                return True
            self.fast_fails += 1
            return False
        # half-open: one probe at a time.
        if self._probe_in_flight:
            self.fast_fails += 1
            return False
        self._probe_in_flight = True
        return True

    def record_success(self) -> None:
        if self.threshold is None:
            return
        self._consecutive_failures = 0
        self._probe_in_flight = False
        self.state = "closed"

    def record_failure(self) -> None:
        if self.threshold is None:
            return
        self._consecutive_failures += 1
        if self.state == "half_open":
            self._trip()
        elif (
            self.state == "closed"
            and self._consecutive_failures >= self.threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.state = "open"
        self.opens += 1
        self._opened_at = self.env.now
        self._probe_in_flight = False


class ResilientScorer:
    """Duck-typed serving-tool wrapper adding timeouts/retries/fallback.

    Engines and the runner only touch ``kind``, ``load``, ``score``,
    ``costs`` and ``requests_served`` — all delegated — so the wrapper
    slots in wherever a :class:`~repro.serving.base.ServingTool` goes.
    """

    def __init__(
        self,
        env: Environment,
        inner: typing.Any,
        policy: ResiliencePolicy,
        rng: "RandomStreams",
        fallback: typing.Any = None,
    ) -> None:
        self.env = env
        self.inner = inner
        self.policy = policy
        self.rng = rng
        self.fallback = fallback
        self.breaker = CircuitBreaker(
            env, policy.breaker_threshold, policy.breaker_reset
        )
        self.retries = 0
        self.timeouts = 0
        self.failures = 0
        self.shed = 0
        self.fallbacks = 0
        self._fallback_ready: Event | None = None
        self._register_metrics(getattr(inner, "metrics", None))

    def _register_metrics(self, registry: typing.Any) -> None:
        if registry is None or not getattr(registry, "enabled", False):
            return
        registry.counter(
            "resilience_retries",
            help="scoring attempts retried after a transient failure",
            fn=lambda: self.retries,
        )
        registry.counter(
            "resilience_timeouts",
            help="scoring attempts abandoned at the client-side deadline",
            fn=lambda: self.timeouts,
        )
        registry.counter(
            "resilience_shed",
            help="batches dropped after retries were exhausted",
            fn=lambda: self.shed,
        )
        registry.counter(
            "resilience_fallbacks",
            help="batches scored on the embedded fallback library",
            fn=lambda: self.fallbacks,
        )
        registry.counter(
            "resilience_breaker_opens",
            help="times the circuit breaker tripped open",
            fn=lambda: self.breaker.opens,
        )
        registry.gauge(
            "resilience_breaker_state",
            help="circuit state: 0 closed, 1 half-open, 2 open",
            fn=lambda: {"closed": 0, "half_open": 1, "open": 2}[self.breaker.state],
        )

    # -- delegated serving-tool surface ---------------------------------

    @property
    def kind(self) -> str:
        return self.inner.kind

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def costs(self) -> typing.Any:
        return self.inner.costs

    @property
    def tracer(self) -> typing.Any:
        return self.inner.tracer

    @property
    def loaded(self) -> bool:
        return self.inner.loaded

    @property
    def requests_served(self) -> int:
        served = self.inner.requests_served
        if self.fallback is not None:
            served += self.fallback.requests_served
        return served

    def load(self) -> typing.Generator:
        yield from self.inner.load()

    # -- the resilient call -----------------------------------------------

    def score(
        self, bsz: int, vectorized: bool = False, ctx: typing.Any = None
    ) -> typing.Generator:
        """Coroutine: score with retries; returns the inner result, the
        fallback's result, or None when the batch was shed."""
        attempt = 0
        while True:
            if not self.breaker.allow():
                result = yield from self._degrade(
                    bsz, vectorized, ctx, reason="circuit breaker open"
                )
                return result
            try:
                result = yield from self._attempt(bsz, vectorized, ctx)
            except TransientError as error:
                self.failures += 1
                self.breaker.record_failure()
                if attempt < self.policy.retries:
                    attempt += 1
                    self.retries += 1
                    span = self.tracer.begin(
                        ctx, "resilience.backoff", attempt=attempt
                    )
                    yield self.env.timeout(self._backoff_delay(attempt))
                    self.tracer.end(span)
                    continue
                result = yield from self._degrade(
                    bsz, vectorized, ctx, reason=str(error)
                )
                return result
            else:
                self.breaker.record_success()
                return result

    def _attempt(
        self, bsz: int, vectorized: bool, ctx: typing.Any
    ) -> typing.Generator:
        if self.policy.timeout is None:
            result = yield from self.inner.score(bsz, vectorized=vectorized, ctx=ctx)
            return result
        call = self.env.process(
            self.inner.score(bsz, vectorized=vectorized, ctx=ctx)
        )
        deadline = self.env.timeout(self.policy.timeout)
        yield self.env.any_of([call, deadline])
        if call.processed and call.ok:
            return call.value
        # Deadline won: abandon the in-flight request. The server may
        # still complete it (wasted work), but the reply is discarded.
        if call.is_alive:
            call.interrupt("client timeout")
        self.timeouts += 1
        raise TransientError(
            f"client timeout after {self.policy.timeout}s"
        )

    def _backoff_delay(self, attempt: int) -> float:
        delay = min(
            self.policy.backoff_max,
            self.policy.backoff_base * self.policy.backoff_factor ** (attempt - 1),
        )
        if self.policy.jitter > 0:
            roll = float(self.rng.stream("resilience.jitter").uniform())
            delay *= 1.0 + self.policy.jitter * (2.0 * roll - 1.0)
        return delay

    def _degrade(
        self, bsz: int, vectorized: bool, ctx: typing.Any, reason: str
    ) -> typing.Generator:
        mode = self.policy.on_exhausted
        if mode == "raise":
            raise TransientError(f"retries exhausted: {reason}")
        if mode == "fallback" and self.fallback is not None:
            self.fallbacks += 1
            yield from self._ensure_fallback_loaded(ctx)
            span = self.tracer.begin(ctx, "resilience.fallback")
            result = yield from self.fallback.score(
                bsz, vectorized=vectorized, ctx=ctx
            )
            self.tracer.end(span)
            return result
        self.shed += 1
        return None

    def _ensure_fallback_loaded(self, ctx: typing.Any) -> typing.Generator:
        """Load the embedded fallback once, on first use; concurrent
        degraders wait on the same load instead of double-charging it."""
        if self._fallback_ready is None:
            self._fallback_ready = Event(self.env)
            span = self.tracer.begin(ctx, "resilience.fallback_load")
            yield from self.fallback.load()
            self.tracer.end(span)
            self._fallback_ready.succeed()
        elif not self._fallback_ready.processed:
            yield self._fallback_ready
