"""Fault injection and client resilience (chaos engineering, §7.2).

This package makes failure a first-class experiment axis: a seeded,
deterministic :class:`FaultPlan` schedules server crashes, broker
partition outages, network degradation, and straggler replicas, while a
:class:`ResiliencePolicy` arms the client side with timeouts, backoff
retries, circuit breaking, and graceful degradation. Everything is off
by default; faults-off runs are byte-identical to builds without this
package.

Only pure-configuration types are re-exported here so that
:mod:`repro.config` can import them while staying a leaf module. The
runtime machinery lives in :mod:`repro.faults.injectors`,
:mod:`repro.faults.resilience`, :mod:`repro.faults.recovery`, and
:mod:`repro.faults.report`.
"""

from repro.faults.plan import (
    FaultPlan,
    NetworkDegradation,
    PartitionOutage,
    ResiliencePolicy,
    ServerCrash,
    StragglerReplica,
)
from repro.faults.summary import FaultSummary

__all__ = [
    "FaultPlan",
    "ServerCrash",
    "PartitionOutage",
    "NetworkDegradation",
    "StragglerReplica",
    "ResiliencePolicy",
    "FaultSummary",
]
