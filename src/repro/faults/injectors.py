"""Deterministic fault injectors driven by a :class:`FaultPlan`.

One simulation process per scheduled fault: it sleeps until the fault's
start time, flips the targeted component into its failure mode, sleeps
through the fault window, and restores the component. All timing comes
from the plan and all randomness from named seeded streams, so chaos
runs replay exactly under the same seed.
"""

from __future__ import annotations

import typing

from repro.errors import ConfigError
from repro.faults.plan import (
    FaultPlan,
    NetworkDegradation,
    PartitionOutage,
    ServerCrash,
    StragglerReplica,
)
from repro.metrics.registry import NO_METRICS
from repro.simul import Environment

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simul import RandomStreams

FAULT_KINDS = (
    "server_crash",
    "partition_outage",
    "network_degradation",
    "straggler",
)


class FaultInjector:
    """Schedules every fault in a plan against the assembled system.

    ``cluster`` is the broker cluster (None in standalone mode),
    ``server`` the raw external serving service (None for embedded
    serving), and ``topics`` maps the plan's logical topic roles
    ("input"/"output") to concrete topic names.
    """

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        cluster: typing.Any = None,
        server: typing.Any = None,
        topics: dict[str, str] | None = None,
        rng: "RandomStreams | None" = None,
        metrics: typing.Any = NO_METRICS,
    ) -> None:
        if plan.partition_outages and cluster is None:
            raise ConfigError("partition outages need a broker cluster")
        if plan.touches_serving and server is None:
            raise ConfigError(
                "server/network/straggler faults need an external serving service"
            )
        if any(d.error_rate > 0 for d in plan.network_degradations) and rng is None:
            raise ConfigError("network error injection needs seeded random streams")
        self.env = env
        self.plan = plan
        self.cluster = cluster
        self.server = server
        self.topics = topics or {}
        self.rng = rng
        self.counts: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        for kind in FAULT_KINDS:
            metrics.counter(
                "faults_injected",
                help="faults the chaos plan has injected so far",
                labels={"kind": kind},
                fn=lambda k=kind: self.counts[k],
            )

    def start(self) -> None:
        """Spawn one injector process per scheduled fault."""
        for crash in self.plan.server_crashes:
            self.env.process(self._server_crash(crash))
        for outage in self.plan.partition_outages:
            self.env.process(self._partition_outage(outage))
        for degradation in self.plan.network_degradations:
            self.env.process(self._network_degradation(degradation))
        for straggler in self.plan.stragglers:
            self.env.process(self._straggler(straggler))

    # -- fault bodies -----------------------------------------------------

    def _server_crash(self, spec: ServerCrash) -> typing.Generator:
        yield self.env.timeout(spec.at)
        self.counts["server_crash"] += 1
        self.server.crash(drop_queue=spec.drop_queue)
        yield self.env.timeout(spec.downtime)
        # Restart reloads the model on top of the configured downtime.
        yield from self.server.restart()

    def _partition_outage(self, spec: PartitionOutage) -> typing.Generator:
        topic = self.topics.get(spec.topic, spec.topic)
        yield self.env.timeout(spec.at)
        self.counts["partition_outage"] += 1
        self.cluster.begin_partition_outage(topic, spec.partitions)
        yield self.env.timeout(spec.duration)
        self.cluster.end_partition_outage(topic, spec.partitions)

    def _network_degradation(self, spec: NetworkDegradation) -> typing.Generator:
        yield self.env.timeout(spec.at)
        self.counts["network_degradation"] += 1
        stream = (
            self.rng.stream("faults.network") if self.rng is not None else None
        )
        self.server.channel.impair(
            extra_latency=spec.extra_latency,
            error_rate=spec.error_rate,
            rng=stream,
        )
        yield self.env.timeout(spec.duration)
        self.server.channel.clear_impairment()

    def _straggler(self, spec: StragglerReplica) -> typing.Generator:
        yield self.env.timeout(spec.at)
        self.counts["straggler"] += 1
        worker = spec.worker % self.server.costs.mp
        self.server.set_straggler(worker, spec.slowdown)
        yield self.env.timeout(spec.duration)
        self.server.clear_straggler(worker)
