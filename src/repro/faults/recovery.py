"""Checkpoint/replay recovery for engines beyond Flink (§7.2).

Flink ships its own coordinator (:mod:`repro.sps.flink.fault_tolerance`);
this module gives Kafka Streams, Spark Structured Streaming, and Ray the
same at-least-once recovery using the generic crash/restart hooks on
:class:`~repro.sps.api.DataProcessor` and the existing consumer
``position()``/``seek()`` machinery:

- a coordinator snapshots every source's offsets each
  ``checkpoint_interval`` (charged like Flink's aligned checkpoints);
- a failure injector per configured time kills all engine tasks, waits
  ``recovery_time`` (process restart + model reload), and restarts the
  job seeked back to the last committed offsets — replaying everything
  after the checkpoint, so duplicates appear downstream exactly as they
  would under Kafka Streams EOS-off / Spark checkpointing / Ray task
  re-execution.
"""

from __future__ import annotations

import typing

from repro.errors import ConfigError
from repro.simul import Environment

# Same charge model as Flink's coordinator, for comparability.
from repro.sps.flink.fault_tolerance import (
    CHECKPOINT_COMMIT_COST,
    EXACTLY_ONCE,
    FaultToleranceConfig,
    SNAPSHOT_PAUSE,
)


class EngineRecovery:
    """Generic checkpoint coordinator + failure injector for one engine."""

    def __init__(
        self, env: Environment, engine: typing.Any, ft: FaultToleranceConfig
    ) -> None:
        if ft.guarantee == EXACTLY_ONCE:
            raise ConfigError(
                "exactly-once sinks are implemented for Flink only; "
                "generic recovery is at-least-once"
            )
        self.env = env
        self.engine = engine
        self.ft = ft
        self.checkpoints_completed = 0
        self.failures_injected = 0
        self.restarts = 0
        #: Source offsets of the last *completed* checkpoint, in source
        #: creation order (matches the engine's restore order).
        self._committed: list[dict[int, int]] = []
        self._epoch = 0

    def start(self) -> None:
        self.env.process(self._coordinator())
        for failure_time in sorted(self.ft.failure_times):
            self.env.process(self._failure_injector(failure_time))

    def _coordinator(self) -> typing.Generator:
        while True:
            yield self.env.timeout(self.ft.checkpoint_interval)
            if not self.engine.tasks_alive:
                continue  # job is down; skip this checkpoint
            epoch = self._epoch
            yield self.env.timeout(SNAPSHOT_PAUSE + CHECKPOINT_COMMIT_COST)
            if epoch != self._epoch:
                continue  # a failure raced the checkpoint: never completes
            self._committed = self.engine.checkpoint_positions()
            self.checkpoints_completed += 1

    def _failure_injector(self, failure_time: float) -> typing.Generator:
        yield self.env.timeout(failure_time)
        if not self.engine.tasks_alive:
            return
        self.failures_injected += 1
        self._epoch += 1
        self.engine.crash()
        yield self.env.timeout(self.ft.recovery_time)
        yield from self.engine.tool.load()  # model reloads on restart
        self.restarts += 1
        self.engine.restart(self._committed)
