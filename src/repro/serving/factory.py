"""Factory wiring serving tools from experiment configuration."""

from __future__ import annotations

import typing

from repro import calibration as cal
from repro.errors import ConfigError
from repro.nn.zoo import model_info
from repro.serving.base import ServingTool
from repro.serving.costs import ServingCostModel
from repro.serving.embedded import Dl4jTool, OnnxRuntimeTool, SavedModelTool
from repro.serving.external import RayServeTool, TfServingTool, TorchServeTool
from repro.simul import Environment, RandomStreams

_TOOL_CLASSES: dict[str, type[ServingTool]] = {
    "onnx": OnnxRuntimeTool,
    "dl4j": Dl4jTool,
    "savedmodel": SavedModelTool,
    "tf_serving": TfServingTool,
    "torchserve": TorchServeTool,
    "ray_serve": RayServeTool,
}


def create_serving_tool(
    name: str,
    env: Environment,
    model: str,
    mp: int = 1,
    gpu: bool = False,
    rng: RandomStreams | None = None,
    server_workers: int | None = None,
    protocol: str | None = None,
    link: typing.Any = None,
) -> ServingTool:
    """Build the named serving tool bound to a model and parallelism.

    ``server_workers`` decouples the external server's worker pool from
    the SPS-side parallelism ``mp`` (the paper's default keeps them equal;
    §9 flags non-uniform allocation as open work). ``protocol`` overrides
    the wire API for the gRPC servers: "rest" queries TF-Serving /
    TorchServe through their JSON REST endpoints instead (§3.4.3 notes
    both exist; the paper used gRPC). ``link`` (a
    :class:`~repro.netsim.Link`) repoints the external tool's RPC channel
    at a specific network hop — scale-out placement hands each fleet
    replica the link between the load balancer's node and its own.
    """
    try:
        tool_cls = _TOOL_CLASSES[name]
    except KeyError:
        raise ConfigError(
            f"unknown serving tool {name!r}; have {sorted(_TOOL_CLASSES)}"
        ) from None
    profile = cal.SERVING_PROFILES[name]
    is_external = name in ("tf_serving", "torchserve", "ray_serve")
    if server_workers is not None and not is_external:
        raise ConfigError("server_workers only applies to external serving tools")
    if link is not None and not is_external:
        raise ConfigError("link only applies to external serving tools")
    engine_parallelism = server_workers if (is_external and server_workers) else mp
    costs = ServingCostModel(
        profile=profile,
        model=model_info(model),
        mp=engine_parallelism,
        gpu=gpu,
        rng=rng,
    )
    if protocol is not None:
        if protocol not in ("grpc", "rest"):
            raise ConfigError(f"unknown protocol {protocol!r}; use 'grpc' or 'rest'")
        if name not in ("tf_serving", "torchserve"):
            raise ConfigError(
                f"protocol selection applies to gRPC servers, not {name!r}"
            )
    if protocol is None and link is None:
        return tool_cls(env, costs)
    channel = channel_for(name, protocol=protocol, link=link)
    return tool_cls(env, costs, channel=channel)


def channel_for(
    name: str, protocol: str | None = None, link: typing.Any = None
):
    """The RPC channel class an external tool speaks, over ``link``.

    TF-Serving and TorchServe default to gRPC (``protocol="rest"`` picks
    their JSON REST endpoint); Ray Serve is HTTP-only.
    """
    from repro.netsim import GrpcChannel, HttpChannel

    if name == "ray_serve" or protocol == "rest":
        return HttpChannel(link)
    return GrpcChannel(link)
