"""Model-serving tools: embedded libraries and external services.

Embedded tools (ONNX Runtime, DL4J, SavedModel) run inference inside the
stream processor's process: the scoring task blocks for the engine's
service time and shares the host with every other task. External tools
(TF-Serving, TorchServe, Ray Serve) run as standalone simulated services
with their own worker pools; clients pay serialization and LAN transfers
per request.

Every tool exposes the Crayfish serving interface (§3.2): ``load()`` and
``score(bsz)`` — both simulation coroutines.
"""

from repro.serving.base import ServingTool, ScoringResult
from repro.serving.costs import ServingCostModel
from repro.serving.factory import create_serving_tool

__all__ = [
    "ServingTool",
    "ScoringResult",
    "ServingCostModel",
    "create_serving_tool",
]
