"""TensorFlow SavedModel bundle (§3.4.2): the format-specialized engine.

Executes SavedModel artifacts in-process via the TensorFlow Java
bindings. Close to ONNX Runtime on throughput (Table 4) but with more
variance at high parallelism (Fig. 6's large stddev at mp=16).
"""

from repro.serving.embedded.library import EmbeddedLibrary


class SavedModelTool(EmbeddedLibrary):
    """TensorFlow SavedModel executed inside the stream processor."""
