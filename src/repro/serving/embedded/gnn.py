"""GNN serving: inference that reads k-hop state per request (§9).

Wraps an embedded engine so every scoring call first fetches the target
nodes' k-hop neighborhoods from a :class:`~repro.serving.state.StateStore`
before running the graph convolutions. This is the capability the paper's
conclusion lists as future work for streaming-inference systems.
"""

from __future__ import annotations

import typing

from repro.nn.gnn import GcnModel
from repro.serving.base import ScoringResult
from repro.serving.costs import ServingCostModel, noise_key
from repro.serving.embedded.library import EmbeddedLibrary
from repro.serving.state import StateStore
from repro.simul import Environment


class GnnEmbeddedTool(EmbeddedLibrary):
    """Embedded GNN scoring with per-request neighborhood reads."""

    def __init__(
        self,
        env: Environment,
        costs: ServingCostModel,
        gcn: GcnModel,
        store: StateStore,
    ) -> None:
        super().__init__(env, costs)
        self.gcn = gcn
        self.store = store

    def score(
        self, bsz: int, vectorized: bool = False, ctx: typing.Any = None
    ) -> typing.Generator:
        self._require_loaded()
        start = self.env.now
        # k-hop neighborhood reads happen before the engine slot is taken:
        # state I/O and inference of different requests overlap.
        span = self.tracer.begin(ctx, "serving.state_read")
        yield from self.store.read_many(bsz * self.gcn.neighborhood_size)
        self.tracer.end(span)
        wait = self.tracer.begin(ctx, "serving.engine_wait")
        with self._engine.request() as slot:
            yield slot
            self.tracer.end(wait)
            span = self.tracer.begin(ctx, "serving.inference")
            yield self.env.service_timeout(
                self.costs.apply_time(
                    bsz,
                    vectorized=vectorized,
                    now=self.env.now,
                    key=noise_key(ctx),
                )
            )
            self.tracer.end(span)
        self.requests_served += 1
        return ScoringResult(
            points=bsz,
            output_values=bsz * self.costs.model.output_values,
            service_time=self.env.now - start,
        )
