"""Embedded serving: inference inside the stream processor's process.

The scoring task thread blocks for the engine's service time. One engine
instance is shared by all ``mp`` scoring tasks in the process, so:

- engines with an internal parallelism cap (DL4J) serialize excess
  callers on a shared slot pool, and
- every call pays the contention factor for resource sharing with the
  host SPS (the paper's Fig. 6 scaling penalty for embedded tools).
"""

from __future__ import annotations

import typing

from repro.serving.base import ScoringResult, ServingTool
from repro.serving.costs import ServingCostModel, noise_key
from repro.simul import Environment, Resource


class EmbeddedLibrary(ServingTool):
    """A library loaded via FFI into the SPS process."""

    kind = "embedded"

    def __init__(self, env: Environment, costs: ServingCostModel) -> None:
        super().__init__(env, costs)
        # Slots bound by the engine's useful internal parallelism.
        self._engine = Resource(env, capacity=costs.engine_concurrency)
        self.model_swaps = 0

    def _register_metrics(self, registry: typing.Any) -> None:
        registry.gauge(
            "serving_engine_utilization",
            help="fraction of the embedded engine's slots in use",
            fn=lambda: self._engine.count / self._engine.capacity,
        )
        registry.gauge(
            "serving_engine_queue",
            help="scoring calls waiting for an engine slot",
            fn=lambda: len(self._engine.queue),
        )

    def score(
        self, bsz: int, vectorized: bool = False, ctx: typing.Any = None
    ) -> typing.Generator:
        self._require_loaded()
        start = self.env.now
        wait = self.tracer.begin(ctx, "serving.engine_wait")
        with self._engine.request() as slot:
            yield slot
            self.tracer.end(wait)
            span = self.tracer.begin(ctx, "serving.inference", gpu=self.costs.gpu)
            yield self.env.service_timeout(
                self.costs.apply_time(
                    bsz,
                    vectorized=vectorized,
                    now=self.env.now,
                    key=noise_key(ctx),
                )
            )
            self.tracer.end(span)
        self.requests_served += 1
        return ScoringResult(
            points=bsz,
            output_values=bsz * self.costs.model.output_values,
            service_time=self.env.now - start,
        )

    def swap_model(self, new_costs: "ServingCostModel") -> typing.Generator:
        """Coroutine: replace the in-memory model with a new version.

        Embedded serving has no second copy to warm up behind the scenes:
        the engine must quiesce (every slot drained) and the scoring
        operators stall for the whole load — the §7.2 contrast with an
        external server's zero-downtime rollout
        (:class:`~repro.serving.external.multi_model.MultiModelServer`).
        """
        self._require_loaded()
        slots = [self._engine.request() for __ in range(self._engine.capacity)]
        yield self.env.all_of(slots)
        try:
            yield self.env.service_timeout(new_costs.load_time())
            self.costs = new_costs
        finally:
            for slot in slots:
                self._engine.release(slot)
        self.model_swaps += 1
