"""Embedded interoperability libraries (§3.4.2)."""

from repro.serving.embedded.library import EmbeddedLibrary
from repro.serving.embedded.onnx_runtime import OnnxRuntimeTool
from repro.serving.embedded.dl4j import Dl4jTool
from repro.serving.embedded.savedmodel import SavedModelTool

__all__ = ["EmbeddedLibrary", "OnnxRuntimeTool", "Dl4jTool", "SavedModelTool"]
