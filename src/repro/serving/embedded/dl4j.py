"""DeepLearning4j (§3.4.2): the JVM-native embedded engine.

Imports Keras models from H5 artifacts. Its tensor bridge (ND4J) pays a
higher per-value marshalling cost than ONNX Runtime, and its internal
workspace locking stops useful scaling past 8 concurrent scorers —
reproducing Fig. 6's flat DL4J curve beyond mp=8.
"""

from repro.serving.embedded.library import EmbeddedLibrary


class Dl4jTool(EmbeddedLibrary):
    """DeepLearning4j embedded in the stream processor."""
