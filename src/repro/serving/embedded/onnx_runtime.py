"""ONNX Runtime (§3.4.2): the cross-framework embedded engine.

Chosen by the paper for its interoperability; in our study it is the
fastest embedded option (Table 4) thanks to a cheap FFI boundary and a
well-optimized CPU kernel library.
"""

from repro.serving.embedded.library import EmbeddedLibrary


class OnnxRuntimeTool(EmbeddedLibrary):
    """ONNX Runtime embedded in the stream processor."""
