"""Engine service-time model shared by embedded and external tools."""

from __future__ import annotations

import typing

from repro import calibration as cal
from repro.nn.zoo import ModelInfo
from repro.simul import RandomStreams


def noise_key(ctx: typing.Any) -> int | None:
    """Stable noise identity of a scoring request.

    Returns the producer-assigned batch id when the scoring context
    carries one (every engine passes the :class:`~repro.core.batch.
    CrayfishDataBatch` as ``ctx``), else ``None`` for the sequential
    draw-ordered fallback.
    """
    key = getattr(ctx, "batch_id", None)
    return key if isinstance(key, int) else None


class ServingCostModel:
    """Computes inference service times for one (tool, model) pair.

    The deterministic part is mechanistic: a fixed call overhead, a
    per-value tensor-conversion cost, and ``FLOPs / engine rate`` compute
    that a GPU accelerates (minus a host->device transfer). On top sits
    per-tool multiplicative lognormal noise and a contention factor for
    workers sharing one engine process.
    """

    def __init__(
        self,
        profile: cal.ServingProfile,
        model: ModelInfo,
        mp: int = 1,
        gpu: bool = False,
        rng: RandomStreams | None = None,
    ) -> None:
        if mp < 1:
            raise ValueError(f"mp must be >= 1, got {mp}")
        self.profile = profile
        self.model = model
        self.mp = mp
        self.gpu = gpu
        self.rng = rng
        self._noise_stream = f"serving.{profile.name}.{model.name}"
        self._modulation_cache: dict[int, float] = {}

    @property
    def is_large_model(self) -> bool:
        return self.model.flops_per_point >= cal.LARGE_MODEL_FLOPS

    @property
    def engine_concurrency(self) -> int:
        """How many requests the engine executes concurrently."""
        limit = self.mp
        if self.profile.max_parallelism is not None:
            limit = min(limit, self.profile.max_parallelism)
        if self.is_large_model and self.profile.large_model_concurrency is not None:
            limit = min(limit, self.profile.large_model_concurrency)
        return max(limit, 1)

    @property
    def contention_factor(self) -> float:
        """Service-time inflation from ``mp`` workers sharing the engine."""
        alpha = self.profile.contention_alpha
        if self.is_large_model and self.profile.large_model_alpha:
            alpha = self.profile.large_model_alpha
        # Contention scales with every configured worker, even those
        # queueing for a capped engine (they still churn the process):
        # this is what keeps DL4J flat beyond its 8-slot cap (Fig. 6).
        return 1.0 + alpha * (self.mp - 1)

    def compute_time_per_point(self) -> float:
        """Pure arithmetic time for one data point."""
        compute = self.model.flops_per_point / self.profile.flops_per_sec
        if self.gpu:
            compute /= self.profile.gpu_speedup
        return compute

    def gpu_transfer_time(self, bsz: int) -> float:
        """Host->device input transfer when the GPU is enabled."""
        if not self.gpu:
            return 0.0
        nbytes = bsz * self.model.input_values * 4
        return nbytes * self.profile.gpu_transfer_per_byte

    def base_apply_time(self, bsz: int, vectorized: bool = False) -> float:
        """Deterministic service time for one apply() of ``bsz`` points.

        ``vectorized`` models a caller that hands the engine one
        contiguous tensor for the whole batch (Spark's micro-batch map):
        per-point marshalling collapses to a memcpy share
        (``VECTORIZED_CONVERT_DISCOUNT``).
        """
        if bsz < 1:
            raise ValueError(f"bsz must be >= 1, got {bsz}")
        convert = self.profile.convert_per_value * self.model.input_values
        if vectorized:
            convert *= cal.VECTORIZED_CONVERT_DISCOUNT
        marginal = convert + self.compute_time_per_point()
        return (
            self.profile.call_overhead
            + bsz * marginal
            + self.gpu_transfer_time(bsz)
        ) * self.contention_factor

    def _slow_modulation(self, now: float | None) -> float:
        """Slow multiplicative service-rate drift (GC pauses, co-located
        load), redrawn every ``MODULATION_BUCKET`` of simulated time.
        Gives noisy engines (TF-Serving) burst-to-burst recovery variance
        (Fig. 8) that iid per-request noise cannot produce."""
        if self.rng is None or self.profile.slow_sigma <= 0 or now is None:
            return 1.0
        bucket = int(now / cal.MODULATION_BUCKET)
        if bucket not in self._modulation_cache:
            self._modulation_cache[bucket] = self.rng.lognormal_factor(
                f"{self._noise_stream}.slow", self.profile.slow_sigma
            )
        return self._modulation_cache[bucket]

    def apply_time(
        self,
        bsz: int,
        vectorized: bool = False,
        now: float | None = None,
        key: int | None = None,
    ) -> float:
        """Service time with per-request noise and slow drift applied.

        ``key`` is the request's stable content identity (the batch id).
        When given, the per-request noise factor is a pure function of
        it, so concurrent workers sharing this cost model draw identical
        noise for identical work no matter which one the scheduler pops
        first. Callers without a request identity (coalesced flushes of
        anonymous point counts) fall back to the sequential stream and
        accept tie-order sensitivity — verify-order will surface it.
        """
        time = self.base_apply_time(bsz, vectorized=vectorized)
        if self.rng is not None:
            if key is not None:
                time *= self.rng.keyed_lognormal_factor(
                    self._noise_stream, self.profile.noise_sigma, key
                )
            else:
                time *= self.rng.lognormal_factor(
                    self._noise_stream, self.profile.noise_sigma
                )
        return time * self._slow_modulation(now)

    def load_time(self) -> float:
        """Time to load the model artifact into memory (warm-up only)."""
        nbytes = self.model.param_count * 4
        disk_rate = 200e6  # bytes/s
        return 0.2 + nbytes / disk_rate
