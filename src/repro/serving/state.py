"""Historical-state store for models that read context at scoring time.

The paper's §9 names GNNs as the model class Crayfish cannot yet serve:
scoring one node requires its k-hop neighborhood fetched from historical
data. This module models that substrate: an embedded key-value store
(RocksDB-like) with a block cache — cache hits cost a memory lookup,
misses pay storage latency. Reads from concurrent scorers share the
store's I/O channel.
"""

from __future__ import annotations

import typing

from repro.simul import Environment, RandomStreams, Resource

#: In-memory block-cache hit cost per key.
CACHE_HIT_COST = 0.0008e-3  # 0.8 us
#: Storage read per missed key (point lookup incl. index blocks).
MISS_COST = 0.020e-3  # 20 us
#: Default fraction of neighborhood keys found in the block cache.
DEFAULT_HIT_RATIO = 0.8
#: Concurrent I/O lanes of the store.
IO_LANES = 4


class StateStore:
    """Simulated embedded KV store with a block cache."""

    def __init__(
        self,
        env: Environment,
        hit_ratio: float = DEFAULT_HIT_RATIO,
        hit_cost: float = CACHE_HIT_COST,
        miss_cost: float = MISS_COST,
        io_lanes: int = IO_LANES,
        rng: RandomStreams | None = None,
    ) -> None:
        if not 0.0 <= hit_ratio <= 1.0:
            raise ValueError(f"hit_ratio must be in [0, 1], got {hit_ratio}")
        if io_lanes < 1:
            raise ValueError(f"io_lanes must be >= 1, got {io_lanes}")
        self.env = env
        self.hit_ratio = hit_ratio
        self.hit_cost = hit_cost
        self.miss_cost = miss_cost
        self.rng = rng
        self._io = Resource(env, capacity=io_lanes)
        self.keys_read = 0
        self.keys_missed = 0

    def _misses(self, n_keys: int) -> int:
        if self.rng is None:
            return round(n_keys * (1.0 - self.hit_ratio))
        draw = self.rng.stream("state-store").binomial(n_keys, 1.0 - self.hit_ratio)
        return int(draw)

    def read_many(self, n_keys: int) -> typing.Generator:
        """Coroutine: read ``n_keys`` point lookups; returns miss count."""
        if n_keys < 0:
            raise ValueError(f"n_keys must be >= 0, got {n_keys}")
        if n_keys == 0:
            return 0
        misses = self._misses(n_keys)
        hits = n_keys - misses
        # Cache hits burn CPU on the calling thread.
        yield self.env.service_timeout(hits * self.hit_cost)
        if misses:
            # Storage reads go through the store's bounded I/O lanes.
            with self._io.request() as lane:
                yield lane
                yield self.env.service_timeout(misses * self.miss_cost)
        self.keys_read += n_keys
        self.keys_missed += misses
        return misses
