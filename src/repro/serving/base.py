"""The Crayfish serving interface (§3.2): ``load`` and ``apply``.

Every serving tool — embedded or external — implements
:class:`ServingTool`: a ``load()`` coroutine run once before the streaming
job starts and a ``score(bsz)`` coroutine invoked per CrayfishDataBatch.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ServingError
from repro.metrics.registry import NO_METRICS
from repro.serving.costs import ServingCostModel
from repro.simul import Environment
from repro.tracing.spans import NO_TRACE


@dataclasses.dataclass(frozen=True)
class ScoringResult:
    """What a scoring call produced."""

    #: Data points scored.
    points: int
    #: Scalar values in the predictions (bsz * output_values).
    output_values: int
    #: Simulated seconds the call took end to end.
    service_time: float


class ServingTool:
    """Base class for serving tools bound to one experiment."""

    #: "embedded" or "external"; informs SPS adapters and reports.
    kind: str = ""

    def __init__(self, env: Environment, costs: ServingCostModel) -> None:
        self.env = env
        self.costs = costs
        #: Installed by the runner when tracing is on; spans inside the
        #: serving tool attach to the scored record's trace.
        self.tracer = NO_TRACE
        #: Installed via :meth:`install_metrics` when telemetry is on.
        self.metrics = NO_METRICS
        self._loaded = False
        self.requests_served = 0

    def install_metrics(self, registry: typing.Any) -> None:
        """Attach a metrics registry and register this tool's instruments.

        Must run before optional serving machinery (adaptive batching,
        autoscaling) is installed, so those layers find the registry on
        ``self.metrics``.
        """
        self.metrics = registry
        registry.counter(
            "serving_requests",
            help="scoring calls the serving tool served",
            fn=lambda: self.requests_served,
        )
        self._register_metrics(registry)

    def _register_metrics(self, registry: typing.Any) -> None:
        """Subclass hook: register tool-specific instruments."""

    @property
    def name(self) -> str:
        return self.costs.profile.name

    @property
    def loaded(self) -> bool:
        return self._loaded

    def load(self) -> typing.Generator:
        """Coroutine: bring the model into memory (charged as warm-up)."""
        yield self.env.service_timeout(self.costs.load_time())
        self._loaded = True

    def score(
        self, bsz: int, vectorized: bool = False, ctx: typing.Any = None
    ) -> typing.Generator:
        """Coroutine: score one batch; returns :class:`ScoringResult`.

        ``vectorized`` marks whole-chunk calls whose inputs arrive as one
        contiguous tensor (micro-batch engines), which discounts
        per-point marshalling. ``ctx`` is the traced record (a batch or
        :class:`~repro.tracing.spans.TraceContext`) serving-internal
        spans should attach to; None scores untraced.
        """
        raise NotImplementedError

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise ServingError(
                f"{self.name}: score() before load() — the model is not "
                "in memory"
            )
