"""TensorFlow Serving (§3.4.3).

Google's production model server, queried over gRPC with binary tensors.
The fastest external option for small models (Table 4) thanks to
off-the-shelf CPU optimizations — close to, and under some batch sizes
below, embedded latencies (Fig. 5). For large models it executes in one
session, so it barely gains from extra workers (Fig. 7).
"""

from repro.netsim import GrpcChannel, RpcChannel
from repro.serving.costs import ServingCostModel
from repro.serving.external.server import ExternalServingService
from repro.simul import Environment


class TfServingTool(ExternalServingService):
    """TensorFlow Serving behind its gRPC PredictionService API."""

    def __init__(
        self,
        env: Environment,
        costs: ServingCostModel,
        channel: RpcChannel | None = None,
    ) -> None:
        # gRPC by default (the paper's choice, §4.3); pass an HttpChannel
        # to exercise the REST API instead.
        super().__init__(
            env, costs, channel=channel if channel is not None else GrpcChannel()
        )
