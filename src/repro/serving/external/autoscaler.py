"""Queue-driven autoscaling for external serving services (§1, §7.2).

"Managing and scaling the inference lifecycle is operated by the
specialized inference service" — the paper names autoscaling as a core
reason external serving is attractive, but benchmarks fixed worker
counts. This module adds a reactive autoscaler: it watches the request
queue and grows/shrinks the worker pool between configured bounds, with
a realistic provisioning delay (container start + model load) on the way
up. The burst-recovery ablation quantifies what it buys.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ConfigError
from repro.serving.costs import noise_key
from repro.serving.external.server import ExternalServingService
from repro.simul import Environment


@dataclasses.dataclass(frozen=True)
class AutoscalePolicy:
    """Reactive scaling rules."""

    min_workers: int = 1
    max_workers: int = 8
    #: Scale up when queued requests exceed this many per live worker.
    scale_up_queue_per_worker: float = 4.0
    #: Scale down when the queue is below this many per live worker.
    scale_down_queue_per_worker: float = 0.5
    #: How often the autoscaler evaluates the queue.
    check_interval: float = 0.25
    #: Provisioning delay for a new worker (container start + model load).
    worker_start_delay: float = 1.0
    #: Workers added per scale-up decision.
    step: int = 1

    def __post_init__(self) -> None:
        if self.min_workers < 1 or self.max_workers < self.min_workers:
            raise ConfigError(
                f"need 1 <= min_workers <= max_workers, got "
                f"{self.min_workers}..{self.max_workers}"
            )
        if self.check_interval <= 0 or self.worker_start_delay < 0:
            raise ConfigError("invalid autoscaler timings")
        if self.step < 1:
            raise ConfigError(f"step must be >= 1, got {self.step}")
        if self.scale_down_queue_per_worker >= self.scale_up_queue_per_worker:
            raise ConfigError("scale-down threshold must be below scale-up")


class _Retire:
    """Poison pill: the worker that dequeues it checks for retirement."""


class Autoscaler:
    """Scales an :class:`ExternalServingService`'s worker pool.

    ``horizon`` bounds the control loop (the experiment runner passes the
    run duration); ``None`` keeps it running for as long as the
    simulation is driven with ``run(until=...)``.
    """

    def __init__(
        self,
        env: Environment,
        service: ExternalServingService,
        policy: AutoscalePolicy,
        horizon: float | None = None,
    ) -> None:
        self.env = env
        self.service = service
        self.policy = policy
        self.horizon = horizon
        self.desired = policy.min_workers
        self.peak_desired = policy.min_workers
        self.live = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self._worker_seq = 0
        # Take over worker management from the service.
        service._start_workers = self._bootstrap  # type: ignore[method-assign]
        # The engine must admit the scaled-out pool (still bounded by
        # large-model session limits).
        from repro.simul import Resource

        concurrency = policy.max_workers
        if (
            service.costs.is_large_model
            and service.costs.profile.large_model_concurrency is not None
        ):
            concurrency = min(
                concurrency, service.costs.profile.large_model_concurrency
            )
        service._engine = Resource(env, capacity=concurrency)
        self._register_metrics(service.metrics)

    def _register_metrics(self, registry: typing.Any) -> None:
        registry.gauge(
            "autoscaler_replicas",
            help="worker replicas (live: serving; desired: target)",
            labels={"state": "live"},
            fn=lambda: self.live,
        )
        registry.gauge(
            "autoscaler_replicas",
            help="worker replicas (live: serving; desired: target)",
            labels={"state": "desired"},
            fn=lambda: self.desired,
        )
        registry.counter(
            "autoscaler_scale_events",
            help="scaling decisions the control loop took",
            labels={"direction": "up"},
            fn=lambda: self.scale_ups,
        )
        registry.counter(
            "autoscaler_scale_events",
            help="scaling decisions the control loop took",
            labels={"direction": "down"},
            fn=lambda: self.scale_downs,
        )

    def _bootstrap(self) -> None:
        if self.service._workers_started:
            return
        self.service._workers_started = True
        for __ in range(self.policy.min_workers):
            self._spawn_worker(delay=0.0)
        self.env.process(self._control_loop())

    def _spawn_worker(self, delay: float) -> None:
        self._worker_seq += 1
        self.live += 1
        self.env.process(self._worker(delay))

    def _worker(self, delay: float) -> typing.Generator:
        if delay:
            yield self.env.service_timeout(delay)
        service = self.service
        model = service.costs.model
        while True:
            request = yield service._queue.get()
            if isinstance(request, _Retire):
                if self.live > self.desired:
                    self.live -= 1  # retire: the pool shrank below us
                    return
                continue  # stale pill (a newer scale-up superseded it)
            tracer = service.tracer
            tracer.lapse(request.ctx, "serving.queue_wait", "serving.enqueue")
            decode = service.channel.server_decode_cost(
                request.bsz * model.input_values
            )
            span = tracer.begin(request.ctx, "serving.decode")
            yield self.env.service_timeout(decode)
            tracer.end(span)
            wait = tracer.begin(request.ctx, "serving.engine_wait")
            with service._engine.request() as slot:
                yield slot
                tracer.end(wait)
                span = tracer.begin(request.ctx, "serving.inference")
                yield self.env.service_timeout(
                    service.costs.apply_time(
                        request.bsz,
                        vectorized=request.vectorized,
                        now=self.env.now,
                        key=noise_key(request.ctx),
                    )
                )
                tracer.end(span)
            encode = service.channel.server_encode_cost(
                request.bsz * model.output_values
            )
            span = tracer.begin(request.ctx, "serving.encode")
            yield self.env.service_timeout(encode)
            tracer.end(span)
            # The client may have timed out and abandoned the reply.
            if not request.reply.triggered:
                request.reply.succeed()
            service.requests_served += 1

    def _control_loop(self) -> typing.Generator:
        policy = self.policy
        while self.horizon is None or self.env.now < self.horizon:
            yield self.env.service_timeout(policy.check_interval)
            # Count only real requests, not retirement pills.
            queued = sum(
                1 for item in self.service._queue.items
                if not isinstance(item, _Retire)
            )
            if (
                queued > policy.scale_up_queue_per_worker * self.desired
                and self.desired < policy.max_workers
            ):
                added = min(policy.step, policy.max_workers - self.desired)
                self.desired += added
                self.peak_desired = max(self.peak_desired, self.desired)
                self.scale_ups += 1
                for __ in range(added):
                    self._spawn_worker(delay=policy.worker_start_delay)
            elif (
                queued < policy.scale_down_queue_per_worker * self.desired
                and self.desired > policy.min_workers
            ):
                self.desired -= 1
                self.scale_downs += 1
                # The pill drains behind any backlog; the worker that
                # takes it retires (graceful scale-down).
                self.service._queue.try_put(_Retire())
