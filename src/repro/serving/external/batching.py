"""Server-side adaptive batching for external serving.

The paper's related work (Clipper, InferLine) highlights adaptive
batching as the serving-system counterpart of Spark's micro-batching:
the server coalesces queued requests into one engine call — up to
``max_size`` requests or ``max_delay`` seconds of waiting — amortizing
per-request overhead at a bounded latency cost. This module adds that
capability to any :class:`ExternalServingService`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ConfigError
from repro.serving.costs import noise_key
from repro.simul import Store


@dataclasses.dataclass(frozen=True)
class BatchingPolicy:
    """Coalescing limits for the server-side batcher."""

    max_size: int = 8
    max_delay: float = 0.002

    def __post_init__(self) -> None:
        if self.max_size < 2:
            raise ConfigError(f"max_size must be >= 2, got {self.max_size}")
        if self.max_delay <= 0:
            raise ConfigError(f"max_delay must be positive, got {self.max_delay}")


def install_adaptive_batching(service, policy: BatchingPolicy) -> None:
    """Rewire ``service`` so workers consume coalesced request batches.

    The service's ingress queue is drained by a dispatcher that forms
    batches; workers execute one engine call per batch and complete every
    member's reply. Must be called before the service is loaded.
    """
    if service._workers_started:
        raise ConfigError("install batching before the service starts")
    service.batching = policy
    service._batch_queue = Store(service.env)
    service._start_workers_plain = service._start_workers
    service.metrics.gauge(
        "serving_batch_queue_depth",
        help="coalesced batches waiting for a batch worker",
        fn=lambda: service._batch_queue.level,
    )
    service._batch_size_hist = service.metrics.histogram(
        "serving_batch_size",
        help="requests coalesced into each assembled batch",
        buckets=[1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
    )

    def start_with_batcher() -> None:
        if service._workers_started:
            return
        service._workers_started = True
        service.env.process(_dispatcher(service, policy))
        for __ in range(service.costs.mp):
            service.env.process(_batch_worker(service))

    service._start_workers = start_with_batcher


def _get_with_deadline(env, store: Store, deadline: float) -> typing.Generator:
    """Wait for the next item or the deadline, whichever first.

    Returns ``(got, item)``. A get that loses the race is neutralized by
    triggering it empty, which the store skips when dispatching.
    """
    getter = store.get()
    timeout = env.timeout(max(deadline - env.now, 0.0))
    yield env.any_of([getter, timeout])
    if getter.processed:
        return True, getter.value
    if not getter.triggered:
        getter.succeed(None)  # cancel: the store skips triggered waiters
    return False, None


def _dispatcher(service, policy: BatchingPolicy) -> typing.Generator:
    env = service.env
    while True:
        first = yield service._queue.get()
        batch = [first]
        deadline = env.now + policy.max_delay
        while len(batch) < policy.max_size and env.now < deadline:
            got, item = yield from _get_with_deadline(env, service._queue, deadline)
            if not got:
                break
            batch.append(item)
        service._batch_size_hist.observe(len(batch))
        yield service._batch_queue.put(batch)


def _batch_worker(service) -> typing.Generator:
    env = service.env
    tracer = service.tracer
    model = service.costs.model
    while True:
        batch = yield service._batch_queue.get()
        for request in batch:
            tracer.lapse(request.ctx, "serving.queue_wait", "serving.enqueue")
        total_points = sum(request.bsz for request in batch)
        decode = service.channel.server_decode_cost(
            total_points * model.input_values
        )
        spans = [tracer.begin(r.ctx, "serving.decode") for r in batch]
        yield env.service_timeout(decode)
        for span in spans:
            tracer.end(span)
        spans = [tracer.begin(r.ctx, "serving.engine_wait") for r in batch]
        with service._engine.request() as slot:
            yield slot
            for span in spans:
                tracer.end(span)
            # One engine call for the whole coalesced batch.
            spans = [
                tracer.begin(r.ctx, "serving.inference", coalesced=len(batch))
                for r in batch
            ]
            # Key the coalesced call's noise on the oldest member so the
            # draw stays a pure function of which requests coalesced.
            keys = [noise_key(request.ctx) for request in batch]
            yield env.service_timeout(
                service.costs.apply_time(
                    total_points,
                    now=env.now,
                    key=min((k for k in keys if k is not None), default=None),
                )
            )
            for span in spans:
                tracer.end(span)
        encode = service.channel.server_encode_cost(
            total_points * model.output_values
        )
        spans = [tracer.begin(r.ctx, "serving.encode") for r in batch]
        yield env.service_timeout(encode)
        for span in spans:
            tracer.end(span)
        for request in batch:
            # The client may have timed out and abandoned the reply.
            if not request.reply.triggered:
                request.reply.succeed()
            service.requests_served += 1
