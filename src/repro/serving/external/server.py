"""External serving: a standalone inference microservice.

The service owns a request queue drained by ``mp`` worker processes on a
dedicated host (the paper's 16-vCPU serving VM). Clients — SPS scoring
tasks — block on the full round trip: request encoding, LAN transfer,
server-side queueing + decode + inference + encode, and the response
transfer back (§3.4.3; all calls are blocking per §4.3).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import TransientError
from repro.netsim import RpcChannel
from repro.serving.base import ScoringResult, ServingTool
from repro.serving.costs import ServingCostModel, noise_key
from repro.simul import Environment, Event, Interrupt, Process, Resource, Store


@dataclasses.dataclass
class _Request:
    bsz: int
    reply: Event
    vectorized: bool = False
    #: Trace subject of the record being scored (None when untraced).
    ctx: typing.Any = None


class ExternalServingService(ServingTool):
    """A model server reachable over an RPC channel."""

    kind = "external"

    def __init__(
        self,
        env: Environment,
        costs: ServingCostModel,
        channel: RpcChannel,
    ) -> None:
        super().__init__(env, costs)
        self.channel = channel
        self._queue: Store = Store(env)
        # Engine-level concurrency cap (e.g. TF-Serving executes large
        # models in a single session; Fig. 7).
        self._engine = Resource(env, capacity=costs.engine_concurrency)
        self._workers_started = False
        # Fault-injection state: crash/restart and straggling workers.
        self._down = False
        self._worker_processes: list[Process] = []
        self._inflight: list[_Request] = []
        self._straggle: dict[int, float] = {}
        self.crashes = 0

    def _register_metrics(self, registry: typing.Any) -> None:
        registry.gauge(
            "serving_queue_depth",
            help="requests queued at the external server's ingress",
            fn=lambda: self._queue.level,
        )
        # Late-bound through self: the autoscaler swaps self._engine.
        registry.gauge(
            "serving_engine_utilization",
            help="fraction of the server's engine concurrency in use",
            fn=lambda: self._engine.count / self._engine.capacity,
        )

    # -- server side -----------------------------------------------------

    def load(self) -> typing.Generator:
        yield from super().load()
        self._start_workers()

    def _start_workers(self) -> None:
        if self._workers_started:
            return
        self._workers_started = True
        self._worker_processes = [
            self.env.process(self._worker(index))
            for index in range(self.costs.mp)
        ]

    def _worker(self, index: int = 0) -> typing.Generator:
        try:
            yield from self._worker_loop(index)
        except Interrupt:
            return  # killed by a server crash

    def _worker_loop(self, index: int) -> typing.Generator:
        model = self.costs.model
        while True:
            request: _Request = yield self._queue.get()
            self._inflight.append(request)
            self.tracer.lapse(request.ctx, "serving.queue_wait", "serving.enqueue")
            decode = self.channel.server_decode_cost(
                request.bsz * model.input_values
            )
            span = self.tracer.begin(request.ctx, "serving.decode")
            yield self.env.service_timeout(decode)
            self.tracer.end(span)
            # Inference proper runs under the engine's concurrency cap
            # (e.g. TF-Serving executes large models in one session).
            wait = self.tracer.begin(request.ctx, "serving.engine_wait")
            with self._engine.request() as slot:
                yield slot
                self.tracer.end(wait)
                span = self.tracer.begin(
                    request.ctx, "serving.inference", gpu=self.costs.gpu
                )
                yield self.env.service_timeout(
                    self.costs.apply_time(
                        request.bsz,
                        vectorized=request.vectorized,
                        now=self.env.now,
                        key=noise_key(request.ctx),
                    )
                    # A straggling replica (noisy neighbour) stretches
                    # inference on this worker; 1.0 when healthy.
                    * self._straggle.get(index, 1.0)
                )
                self.tracer.end(span)
            encode = self.channel.server_encode_cost(
                request.bsz * model.output_values
            )
            span = self.tracer.begin(request.ctx, "serving.encode")
            yield self.env.service_timeout(encode)
            self.tracer.end(span)
            # The client may have timed out and abandoned the reply: the
            # work is done (and counted) but the response is dropped.
            if not request.reply.triggered:
                request.reply.succeed()
            self.requests_served += 1
            self._inflight.remove(request)

    # -- fault injection -------------------------------------------------

    def set_straggler(self, index: int, slowdown: float) -> None:
        """Make worker ``index`` a straggler: its inference times stretch
        by ``slowdown`` until :meth:`clear_straggler`."""
        self._straggle[index] = slowdown

    def clear_straggler(self, index: int) -> None:
        self._straggle.pop(index, None)

    def crash(self, drop_queue: bool = True) -> None:
        """Kill the server process: workers die, in-flight requests fail,
        and (optionally) the ingress queue is dropped.

        Clients see :class:`TransientError` on their pending replies; new
        calls fail fast until :meth:`restart` completes.
        """
        self.crashes += 1
        self._down = True
        self._loaded = False  # the model must be reloaded on restart
        self._workers_started = False
        workers, self._worker_processes = self._worker_processes, []
        for worker in workers:
            if worker.is_alive:
                worker.interrupt("server crashed")
        inflight, self._inflight = self._inflight, []
        dropped = list(inflight)
        if drop_queue:
            while True:
                ok, item = self._queue.try_get()
                if not ok:
                    break
                dropped.append(item)
        for request in dropped:
            if not request.reply.triggered:
                request.reply.fail(TransientError(f"{self.name}: server crashed"))

    def restart(self) -> typing.Generator:
        """Coroutine: bring the server back (model reload pays the full
        load cost again) and resume draining the queue."""
        yield from self.load()
        self._down = False

    # -- client side -------------------------------------------------------

    def _pre_dispatch(self, ctx: typing.Any = None) -> typing.Generator:
        """Hook for ingress costs paid before a request reaches a worker
        (Ray Serve's single HTTP proxy overrides this)."""
        return
        yield  # pragma: no cover - makes this a generator

    def score(
        self, bsz: int, vectorized: bool = False, ctx: typing.Any = None
    ) -> typing.Generator:
        """Coroutine run by the SPS scoring task: one blocking RPC."""
        if not self._down:
            # While crashed the server is unreachable, not unloaded — the
            # client gets a TransientError below, not a usage error.
            self._require_loaded()
        start = self.env.now
        model = self.costs.model
        costs = self.channel.round_trip_costs(
            request_values=bsz * model.input_values,
            response_values=bsz * model.output_values,
        )
        # Client-side CPU: stub call + request encode + response decode.
        span = self.tracer.begin(ctx, "rpc.client_cpu")
        yield self.env.service_timeout(costs.client_cpu)
        self.tracer.end(span)
        span = self.tracer.begin(ctx, "rpc.request_transfer")
        yield self.env.service_timeout(costs.request_transfer)
        self.tracer.end(span)
        if self._down:
            raise TransientError(f"{self.name}: server unavailable")
        if self.channel.roll_error():
            raise TransientError(f"{self.name}: connection reset")
        yield from self._pre_dispatch(ctx)
        reply = Event(self.env)
        self.tracer.mark(ctx, "serving.enqueue")
        yield self._queue.put(
            _Request(bsz=bsz, reply=reply, vectorized=vectorized, ctx=ctx)
        )
        yield reply
        span = self.tracer.begin(ctx, "rpc.response_transfer")
        yield self.env.service_timeout(costs.response_transfer)
        self.tracer.end(span)
        return ScoringResult(
            points=bsz,
            output_values=bsz * model.output_values,
            service_time=self.env.now - start,
        )
