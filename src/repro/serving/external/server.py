"""External serving: a standalone inference microservice.

The service owns a request queue drained by ``mp`` worker processes on a
dedicated host (the paper's 16-vCPU serving VM). Clients — SPS scoring
tasks — block on the full round trip: request encoding, LAN transfer,
server-side queueing + decode + inference + encode, and the response
transfer back (§3.4.3; all calls are blocking per §4.3).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.netsim import RpcChannel
from repro.serving.base import ScoringResult, ServingTool
from repro.serving.costs import ServingCostModel
from repro.simul import Environment, Event, Resource, Store


@dataclasses.dataclass
class _Request:
    bsz: int
    reply: Event
    vectorized: bool = False
    #: Trace subject of the record being scored (None when untraced).
    ctx: typing.Any = None


class ExternalServingService(ServingTool):
    """A model server reachable over an RPC channel."""

    kind = "external"

    def __init__(
        self,
        env: Environment,
        costs: ServingCostModel,
        channel: RpcChannel,
    ) -> None:
        super().__init__(env, costs)
        self.channel = channel
        self._queue: Store = Store(env)
        # Engine-level concurrency cap (e.g. TF-Serving executes large
        # models in a single session; Fig. 7).
        self._engine = Resource(env, capacity=costs.engine_concurrency)
        self._workers_started = False

    def _register_metrics(self, registry: typing.Any) -> None:
        registry.gauge(
            "serving_queue_depth",
            help="requests queued at the external server's ingress",
            fn=lambda: self._queue.level,
        )
        # Late-bound through self: the autoscaler swaps self._engine.
        registry.gauge(
            "serving_engine_utilization",
            help="fraction of the server's engine concurrency in use",
            fn=lambda: self._engine.count / self._engine.capacity,
        )

    # -- server side -----------------------------------------------------

    def load(self) -> typing.Generator:
        yield from super().load()
        self._start_workers()

    def _start_workers(self) -> None:
        if self._workers_started:
            return
        self._workers_started = True
        for __ in range(self.costs.mp):
            self.env.process(self._worker())

    def _worker(self) -> typing.Generator:
        model = self.costs.model
        while True:
            request: _Request = yield self._queue.get()
            self.tracer.lapse(request.ctx, "serving.queue_wait", "serving.enqueue")
            decode = self.channel.server_decode_cost(
                request.bsz * model.input_values
            )
            span = self.tracer.begin(request.ctx, "serving.decode")
            yield self.env.timeout(decode)
            self.tracer.end(span)
            # Inference proper runs under the engine's concurrency cap
            # (e.g. TF-Serving executes large models in one session).
            wait = self.tracer.begin(request.ctx, "serving.engine_wait")
            with self._engine.request() as slot:
                yield slot
                self.tracer.end(wait)
                span = self.tracer.begin(
                    request.ctx, "serving.inference", gpu=self.costs.gpu
                )
                yield self.env.timeout(
                    self.costs.apply_time(
                        request.bsz,
                        vectorized=request.vectorized,
                        now=self.env.now,
                    )
                )
                self.tracer.end(span)
            encode = self.channel.server_encode_cost(
                request.bsz * model.output_values
            )
            span = self.tracer.begin(request.ctx, "serving.encode")
            yield self.env.timeout(encode)
            self.tracer.end(span)
            request.reply.succeed()
            self.requests_served += 1

    # -- client side -------------------------------------------------------

    def _pre_dispatch(self, ctx: typing.Any = None) -> typing.Generator:
        """Hook for ingress costs paid before a request reaches a worker
        (Ray Serve's single HTTP proxy overrides this)."""
        return
        yield  # pragma: no cover - makes this a generator

    def score(
        self, bsz: int, vectorized: bool = False, ctx: typing.Any = None
    ) -> typing.Generator:
        """Coroutine run by the SPS scoring task: one blocking RPC."""
        self._require_loaded()
        start = self.env.now
        model = self.costs.model
        costs = self.channel.round_trip_costs(
            request_values=bsz * model.input_values,
            response_values=bsz * model.output_values,
        )
        # Client-side CPU: stub call + request encode + response decode.
        span = self.tracer.begin(ctx, "rpc.client_cpu")
        yield self.env.timeout(costs.client_cpu)
        self.tracer.end(span)
        span = self.tracer.begin(ctx, "rpc.request_transfer")
        yield self.env.timeout(costs.request_transfer)
        self.tracer.end(span)
        yield from self._pre_dispatch(ctx)
        reply = Event(self.env)
        self.tracer.mark(ctx, "serving.enqueue")
        yield self._queue.put(
            _Request(bsz=bsz, reply=reply, vectorized=vectorized, ctx=ctx)
        )
        yield reply
        span = self.tracer.begin(ctx, "rpc.response_transfer")
        yield self.env.timeout(costs.response_transfer)
        self.tracer.end(span)
        return ScoringResult(
            points=bsz,
            output_values=bsz * model.output_values,
            service_time=self.env.now - start,
        )
