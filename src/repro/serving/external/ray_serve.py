"""Ray Serve (§3.4.4).

Ray's serving library, queried over HTTP with JSON payloads (the paper
avoids its then-experimental gRPC ingress). Ray Serve deploys a single
HTTP proxy per node that forwards requests to replicas; that proxy is a
serialized chokepoint, capping vertical scalability at ~455 ev/s in
Fig. 11 no matter how many replicas exist.
"""

from __future__ import annotations

import typing

from repro import calibration as cal
from repro.netsim import HttpChannel, RpcChannel
from repro.serving.costs import ServingCostModel
from repro.serving.external.server import ExternalServingService
from repro.simul import Environment, Resource


class RayServeTool(ExternalServingService):
    """Ray Serve: HTTP ingress via one proxy, then replica workers."""

    def __init__(
        self,
        env: Environment,
        costs: ServingCostModel,
        channel: RpcChannel | None = None,
    ) -> None:
        # Always HTTP/JSON; ``channel`` only repoints the link (scale-out
        # placement hands each replica the hop from the load balancer).
        super().__init__(
            env, costs, channel=channel if channel is not None else HttpChannel()
        )
        self._proxy = Resource(env, capacity=1)

    def _pre_dispatch(self, ctx: typing.Any = None) -> typing.Generator:
        """Every request crosses the node's single HTTP proxy."""
        wait = self.tracer.begin(ctx, "serving.proxy_wait")
        with self._proxy.request() as slot:
            yield slot
            self.tracer.end(wait)
            span = self.tracer.begin(ctx, "serving.proxy")
            yield self.env.service_timeout(cal.RAY_SERVE_PROXY_COST)
            self.tracer.end(span)
