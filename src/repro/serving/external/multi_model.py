"""Multi-model serving and zero-downtime version rollout (§7.2).

The paper's discussion lists model management, versioning, and
multi-model serving as the capabilities that make external serving
attractive in production, "features natively supported by most external
alternatives". This module implements them:

- :class:`MultiModelServer` hosts many named models behind one endpoint,
  routing each request to the currently active version.
- :meth:`MultiModelServer.deploy` loads a new version *in the
  background*; the old version keeps serving until the new one is warm,
  then traffic switches atomically — a zero-downtime rollout.

The embedded counterpart, :meth:`EmbeddedLibrary.swap_model`
(see :mod:`repro.serving.embedded.library`), must quiesce the engine to
replace weights in place, stalling the scoring operators for the whole
load — the contrast `examples/model_rollout.py` measures.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ServingError
from repro.netsim import GrpcChannel, RpcChannel
from repro.serving.base import ScoringResult
from repro.serving.costs import ServingCostModel
from repro.simul import Environment, Event, Store


@dataclasses.dataclass
class _Deployment:
    version: str
    costs: ServingCostModel
    requests_served: int = 0


@dataclasses.dataclass
class _RoutedRequest:
    model: str
    bsz: int
    reply: Event


class MultiModelServer:
    """One serving endpoint hosting many model deployments."""

    kind = "external"

    def __init__(
        self,
        env: Environment,
        workers: int = 2,
        channel: RpcChannel | None = None,
    ) -> None:
        if workers < 1:
            raise ServingError(f"need >= 1 worker, got {workers}")
        self.env = env
        self.channel = channel if channel is not None else GrpcChannel()
        self._queue: Store = Store(env)
        self._active: dict[str, _Deployment] = {}
        self._started = False
        self.workers = workers
        self.rollouts_completed = 0

    # -- management API -----------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for __ in range(self.workers):
            self.env.process(self._worker())

    def models(self) -> dict[str, str]:
        """Deployed model name -> active version."""
        return {name: dep.version for name, dep in self._active.items()}

    def deploy(
        self, name: str, version: str, costs: ServingCostModel
    ) -> typing.Generator:
        """Coroutine: warm-load ``version`` and switch traffic to it.

        The previous version (if any) serves every request arriving while
        the load is in progress; the switch itself is atomic.
        """
        self.start()
        yield self.env.service_timeout(costs.load_time())
        self._active[name] = _Deployment(version=version, costs=costs)
        self.rollouts_completed += 1

    def undeploy(self, name: str) -> None:
        if name not in self._active:
            raise ServingError(f"model {name!r} is not deployed")
        del self._active[name]

    # -- data path -------------------------------------------------------------

    def _deployment(self, name: str) -> _Deployment:
        try:
            return self._active[name]
        except KeyError:
            raise ServingError(
                f"model {name!r} is not deployed; have {sorted(self._active)}"
            ) from None

    def _worker(self) -> typing.Generator:
        while True:
            request: _RoutedRequest = yield self._queue.get()
            # Route at service time: a rollout completing while the
            # request queued means the new version serves it.
            deployment = self._deployment(request.model)
            model = deployment.costs.model
            decode = self.channel.server_decode_cost(
                request.bsz * model.input_values
            )
            yield self.env.service_timeout(decode)
            yield self.env.service_timeout(
                deployment.costs.apply_time(request.bsz, now=self.env.now)
            )
            encode = self.channel.server_encode_cost(
                request.bsz * model.output_values
            )
            yield self.env.service_timeout(encode)
            deployment.requests_served += 1
            request.reply.succeed(deployment.version)

    def score(self, name: str, bsz: int) -> typing.Generator:
        """Coroutine (client side): one blocking scoring RPC for ``name``.

        Returns ``(ScoringResult, version_that_served_it)``.
        """
        deployment = self._deployment(name)  # fail fast on unknown models
        model = deployment.costs.model
        costs = self.channel.round_trip_costs(
            request_values=bsz * model.input_values,
            response_values=bsz * model.output_values,
        )
        start = self.env.now
        yield self.env.service_timeout(costs.client_cpu)
        yield self.env.service_timeout(costs.request_transfer)
        reply = Event(self.env)
        yield self._queue.put(_RoutedRequest(model=name, bsz=bsz, reply=reply))
        version = yield reply
        yield self.env.service_timeout(costs.response_transfer)
        result = ScoringResult(
            points=bsz,
            output_values=bsz * model.output_values,
            service_time=self.env.now - start,
        )
        return result, version
