"""External serving frameworks (§3.4.3-§3.4.4)."""

from repro.serving.external.server import ExternalServingService
from repro.serving.external.tf_serving import TfServingTool
from repro.serving.external.torchserve import TorchServeTool
from repro.serving.external.ray_serve import RayServeTool

__all__ = [
    "ExternalServingService",
    "TfServingTool",
    "TorchServeTool",
    "RayServeTool",
]
