"""TorchServe (§3.4.3).

PyTorch's model server, queried over gRPC. Requests pass through Python
handler code, giving it the highest per-request overhead of the external
tools (Table 4: 225 ev/s vs TF-Serving's 617), but its process-per-worker
design keeps scaling for large models where TF-Serving flattens
(Fig. 7: TorchServe overtakes TF-Serving past mp=8).
"""

from repro.netsim import GrpcChannel, RpcChannel
from repro.serving.costs import ServingCostModel
from repro.serving.external.server import ExternalServingService
from repro.simul import Environment


class TorchServeTool(ExternalServingService):
    """TorchServe behind its gRPC inference API."""

    def __init__(
        self,
        env: Environment,
        costs: ServingCostModel,
        channel: RpcChannel | None = None,
    ) -> None:
        # gRPC by default (the paper's choice, §4.3); pass an HttpChannel
        # to exercise the REST API instead.
        super().__init__(
            env, costs, channel=channel if channel is not None else GrpcChannel()
        )
