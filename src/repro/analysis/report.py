"""Lint reporters: human text, machine JSON, and the suppression inventory."""

from __future__ import annotations

import json
import typing

from repro.analysis.core import FileReport


def summarize(reports: typing.Sequence[FileReport]) -> dict:
    return {
        "files": len(reports),
        "findings": sum(len(r.findings) for r in reports),
        "suppressed": sum(len(r.suppressed) for r in reports),
    }


def render_text(
    reports: typing.Sequence[FileReport], show_suppressed: bool = False
) -> str:
    """One ``path:line:col: rule: message`` line per finding."""
    lines: list[str] = []
    for report in reports:
        for finding in report.findings:
            lines.append(
                f"{finding.location()}: {finding.rule}: {finding.message}"
            )
        if show_suppressed:
            for item in report.suppressed:
                lines.append(
                    f"{item.finding.location()}: {item.finding.rule}: "
                    f"suppressed ({item.pragma.reason})"
                )
    stats = summarize(reports)
    lines.append(
        f"{stats['files']} file(s): {stats['findings']} finding(s), "
        f"{stats['suppressed']} suppressed"
    )
    return "\n".join(lines)


def render_json(reports: typing.Sequence[FileReport]) -> str:
    """The full lint outcome as one JSON document."""
    payload = {
        "summary": summarize(reports),
        "findings": [
            finding.to_dict()
            for report in reports
            for finding in report.findings
        ],
        "suppressed": [
            {
                **item.finding.to_dict(),
                "reason": item.pragma.reason,
                "pragma_line": item.pragma.line,
                "scope": "file" if item.pragma.kind == "allow-file" else "line",
            }
            for report in reports
            for item in report.suppressed
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_suppressions(reports: typing.Sequence[FileReport]) -> str:
    """The committed inventory: every deliberate exception in one place.

    Grouped by file; one entry per pragma, with the rule(s), scope, and
    mandatory reason. Pragmas that matched no finding are omitted — the
    linter reports those as errors separately.
    """
    lines = [
        "# Determinism lint suppressions",
        "",
        "Every deliberate exception to `crayfish lint`, with its reason.",
        "Regenerate with `crayfish lint --list-suppressions src/`.",
        "",
    ]
    total = 0
    for report in reports:
        if not report.suppressed:
            continue
        lines.append(f"## {report.path}")
        lines.append("")
        seen: list[tuple] = []
        for item in report.suppressed:
            pragma = item.pragma
            scope = "file" if pragma.kind == "allow-file" else f"line {item.finding.line}"
            key = (pragma.line, item.finding.rule, scope)
            if key in seen:
                continue
            seen.append(key)
            total += 1
            lines.append(
                f"- `{item.finding.rule}` ({scope}): {pragma.reason}"
            )
        lines.append("")
    lines.append(f"{total} suppression(s) total.")
    return "\n".join(lines)
