"""Static determinism & simulation-safety analysis (``crayfish lint``).

Every result this reproduction produces rests on one invariant: a run is
a pure function of ``(config, seed)``. This package defends that
invariant three ways:

- an AST-based **linter** (:mod:`repro.analysis.rules`) with a rule
  catalogue tuned to this codebase — wall-clock reads, unseeded global
  RNG, salted ``hash()``, set-order leaks, ``id()``-based ordering,
  blocking I/O in simulation processes, mutable defaults, and silent
  exception handlers;
- a runtime **determinism sanitizer**
  (:mod:`repro.analysis.sanitizer`) that monkeypatches wall-clock and
  global-RNG entry points to raise during a run;
- a **dual-run verification harness**
  (:mod:`repro.analysis.determinism`) that executes the same scenario
  twice and byte-diffs the results/metrics/trace exports;
- a **simulated-concurrency race detector** spanning a static pass over
  the process graph (:mod:`repro.analysis.races`), a dynamic tie-class
  access tracker (:mod:`repro.analysis.tierace`), and a
  schedule-perturbation proof harness (:mod:`repro.analysis.order`,
  ``crayfish verify-order``) that re-runs an experiment under seeded
  permutations of event-tie pop order and byte-diffs every export.

Deliberate exceptions are suppressed in-source with pragmas::

    expensive_thing()  # crayfish: allow[wall-clock]: CLI boundary, not simulated

See ``docs/determinism.md`` for the full rule catalogue and workflow.
"""

from repro.analysis.core import (
    FileReport,
    Finding,
    Pragma,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.determinism import EngineVerdict, verify_determinism
from repro.analysis.order import OrderVerdict, verify_order
from repro.analysis.races import ProcessGraph
from repro.analysis.rules import all_rules
from repro.analysis.sanitizer import DeterminismViolation, determinism_sanitizer
from repro.analysis.tierace import TieConflict, TieTracker

__all__ = [
    "DeterminismViolation",
    "EngineVerdict",
    "FileReport",
    "Finding",
    "OrderVerdict",
    "Pragma",
    "ProcessGraph",
    "TieConflict",
    "TieTracker",
    "all_rules",
    "determinism_sanitizer",
    "lint_file",
    "lint_paths",
    "lint_source",
    "verify_determinism",
    "verify_order",
]
