"""The determinism & simulation-safety rule catalogue.

Each rule encodes one way nondeterminism (or a blocking hazard) has been
observed to leak into simulation results. The catalogue is tuned to this
codebase: messages point at the sanctioned alternative
(``Environment.now``, ``RandomStreams``, ``zlib.crc32``, ``sorted``,
``env.timeout``) rather than just naming the sin.
"""

from __future__ import annotations

import ast
import typing

from repro.analysis.core import Finding, ModuleContext, Rule, make_rules, register


def all_rules() -> list[Rule]:
    """Instances of every registered rule, sorted by name."""
    return make_rules()


def _call_name(node: ast.Call) -> str | None:
    """The plain builtin-style name a call targets (``open``, ``hash``)."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


# ---------------------------------------------------------------------------
# wall-clock
# ---------------------------------------------------------------------------

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """Real time read inside simulated code corrupts reproducibility."""

    name = "wall-clock"
    description = (
        "no wall-clock reads (time.time/perf_counter/datetime.now/"
        "time.sleep); simulated components use Environment.now"
    )

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Only flag the outermost chain: `time.time` once, not also
            # its inner `time` Name.
            if isinstance(module.parent(node), ast.Attribute):
                continue
            qualified = module.qualified(node)
            if qualified in _WALL_CLOCK:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock access {qualified!r}: simulated code must "
                    "use Environment.now / env.timeout; allowlist true "
                    "CLI/dashboard boundaries with a pragma",
                )


# ---------------------------------------------------------------------------
# global-random
# ---------------------------------------------------------------------------

#: Legacy module-level numpy draws share one hidden global RandomState.
_NP_GLOBAL_DRAWS = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "ranf",
        "sample",
        "bytes",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "lognormal",
        "exponential",
        "poisson",
        "binomial",
        "get_state",
        "set_state",
    }
)


@register
class GlobalRandomRule(Rule):
    """All randomness must route through repro.simul.rng.RandomStreams."""

    name = "global-random"
    description = (
        "no global random.* / np.random.* state and no ad-hoc "
        "np.random.default_rng(); draw from RandomStreams"
    )

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if isinstance(module.parent(node), ast.Attribute):
                continue
            qualified = module.qualified(node)
            if qualified is None:
                continue
            if qualified.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"global stdlib RNG {qualified!r}: draws depend on "
                    "import-order-wide hidden state; use a named "
                    "RandomStreams stream instead",
                )
            elif qualified.startswith("numpy.random."):
                leaf = qualified.rsplit(".", 1)[1]
                if leaf == "default_rng":
                    yield self.finding(
                        module,
                        node,
                        "ad-hoc np.random.default_rng(): route randomness "
                        "through repro.simul.rng.RandomStreams so streams "
                        "stay named, seeded, and independent",
                    )
                elif leaf in _NP_GLOBAL_DRAWS:
                    yield self.finding(
                        module,
                        node,
                        f"global numpy RNG {qualified!r} shares one hidden "
                        "RandomState across the process; use a named "
                        "RandomStreams stream instead",
                    )


# ---------------------------------------------------------------------------
# hash-randomization
# ---------------------------------------------------------------------------


@register
class HashRandomizationRule(Rule):
    """hash() of str/bytes is salted per process by PYTHONHASHSEED."""

    name = "hash-randomization"
    description = (
        "no hash() for seeding or keying; use the stable zlib.crc32 "
        "pattern from repro.simul.rng"
    )

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _call_name(node) == "hash":
                yield self.finding(
                    module,
                    node,
                    "hash() is salted by PYTHONHASHSEED and differs across "
                    "processes; derive stable keys/seeds with zlib.crc32 as "
                    "repro.simul.rng does",
                )


# ---------------------------------------------------------------------------
# unsorted-iteration
# ---------------------------------------------------------------------------

#: Consumers whose result is insensitive to iteration order.
_ORDER_INSENSITIVE = frozenset(
    {"sum", "min", "max", "any", "all", "len", "set", "frozenset", "sorted"}
)


def _is_set_display(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and _call_name(node) in ("set", "frozenset"):
        return True
    return False


def _is_set_annotation(node: ast.AST | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.split("[", 1)[0].strip()
        return text in ("set", "frozenset")
    return False


class _SetNames:
    """Names (and ``self.x`` attributes) bound to set values in a module."""

    def __init__(self, tree: ast.Module) -> None:
        self.names: set[str] = set()
        self.self_attrs: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_set_display(node.value):
                for target in node.targets:
                    self._bind(target)
            elif isinstance(node, ast.AnnAssign):
                if _is_set_annotation(node.annotation) or (
                    node.value is not None and _is_set_display(node.value)
                ):
                    self._bind(node.target)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in args.args + args.posonlyargs + args.kwonlyargs:
                    if _is_set_annotation(arg.annotation):
                        self.names.add(arg.arg)

    def _bind(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.self_attrs.add(target.attr)

    def is_set(self, node: ast.AST) -> bool:
        if _is_set_display(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in self.self_attrs
        return False


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


def _is_values_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "values"
        and not node.args
        and not node.keywords
    )


#: Calls that enqueue simulation work: the order members reach these in
#: IS event order, so the feeding iteration must be explicitly ordered.
_SCHEDULING_CALLS = frozenset({"process", "push_batch", "spawn", "_spawn"})


def _schedules_work(nodes: typing.Iterable[ast.AST]) -> bool:
    """True when any node (sub)tree calls into event scheduling."""
    for root in nodes:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) in _SCHEDULING_CALLS:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULING_CALLS
            ):
                return True
    return False


@register
class UnsortedIterationRule(Rule):
    """Set/keys iteration order must not escape into ordered output."""

    name = "unsorted-iteration"
    description = (
        "no iterating sets or .keys() views into ordered output without "
        "an explicit sorted(...)"
    )

    _MESSAGE = (
        "iteration order of {what} can leak arbitrary ordering into "
        "results, exports, or event scheduling; wrap it in sorted(...) "
        "(or restructure so order cannot escape)"
    )

    #: ``.values()`` views are insertion-ordered, so they are exempt from
    #: the generic check — but when the loop body *schedules events*
    #: (env.process / push_batch), spawn order silently inherits whatever
    #: built the dict; that dependency must be made explicit.
    _VALUES_MESSAGE = (
        "iterating a .values() view into event scheduling makes spawn "
        "order an accident of dict build order; iterate "
        "sorted(d.items()) (or another explicit order) instead"
    )

    def _flag(
        self, module: ModuleContext, iterable: ast.AST
    ) -> Finding | None:
        names: _SetNames = self._names
        if names.is_set(iterable):
            return self.finding(
                module, iterable, self._MESSAGE.format(what="a set")
            )
        if _is_keys_call(iterable):
            return self.finding(
                module, iterable, self._MESSAGE.format(what="a .keys() view")
            )
        return None

    def _order_insensitive_context(
        self, module: ModuleContext, node: ast.AST
    ) -> bool:
        parent = module.parent(node)
        return (
            isinstance(parent, ast.Call)
            and _call_name(parent) in _ORDER_INSENSITIVE
            and node in parent.args
        )

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        self._names = _SetNames(module.tree)
        for node in ast.walk(module.tree):
            iterables: list[ast.AST] = []
            if isinstance(node, ast.For):
                iterables.append(node.iter)
                if _is_values_call(node.iter) and _schedules_work(node.body):
                    yield self.finding(module, node.iter, self._VALUES_MESSAGE)
            elif isinstance(
                node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)
            ):
                if self._order_insensitive_context(module, node):
                    continue
                iterables.extend(g.iter for g in node.generators)
                if any(
                    _is_values_call(g.iter) for g in node.generators
                ) and _schedules_work([node]):
                    yield self.finding(module, node, self._VALUES_MESSAGE)
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name in ("list", "tuple", "enumerate", "iter"):
                    iterables.extend(node.args[:1])
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                ):
                    iterables.extend(node.args[:1])
            for iterable in iterables:
                found = self._flag(module, iterable)
                if found is not None:
                    yield found


# ---------------------------------------------------------------------------
# id-ordering
# ---------------------------------------------------------------------------


@register
class IdOrderingRule(Rule):
    """id() values are addresses: they differ run to run (ASLR, allocator)."""

    name = "id-ordering"
    description = (
        "no id()-based ordering, keying, tie-breaking, or reprs; "
        "addresses differ across runs"
    )

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _call_name(node) == "id":
                yield self.finding(
                    module,
                    node,
                    "id() yields a memory address that changes between "
                    "runs; use a stable sequence number or key instead",
                )


# ---------------------------------------------------------------------------
# blocking-io
# ---------------------------------------------------------------------------

_BLOCKING_MODULES = ("socket", "subprocess", "requests", "urllib", "http")


def _generator_functions(
    tree: ast.Module,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions that are generators (contain a yield in their own body)."""
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack: list[ast.AST] = list(ast.iter_child_nodes(node))
        is_generator = False
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested scope: its yields are not ours
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                is_generator = True
                break
            stack.extend(ast.iter_child_nodes(child))
        if is_generator:
            found.append(node)
    return found


@register
class BlockingIoRule(Rule):
    """Simulation process generators must never block the real world."""

    name = "blocking-io"
    description = (
        "no open()/socket/subprocess/input()/time.sleep inside simulation "
        "process generators; block on env.timeout instead"
    )

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for function in _generator_functions(module.tree):
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                plain = _call_name(node)
                if plain in ("open", "input"):
                    yield self.finding(
                        module,
                        node,
                        f"blocking {plain}() inside generator "
                        f"{function.name!r}: a simulation process must not "
                        "touch the real world; do I/O at the boundary",
                    )
                    continue
                qualified = module.qualified(node.func)
                if qualified is None:
                    continue
                root = qualified.split(".", 1)[0]
                if root in _BLOCKING_MODULES:
                    yield self.finding(
                        module,
                        node,
                        f"blocking call {qualified!r} inside generator "
                        f"{function.name!r}: simulation processes cannot "
                        "wait on real sockets/processes",
                    )
                elif qualified == "time.sleep":
                    yield self.finding(
                        module,
                        node,
                        f"time.sleep inside generator {function.name!r} "
                        "stalls the whole event loop; yield env.timeout(...) "
                        "instead",
                    )


# ---------------------------------------------------------------------------
# mutable-default
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
     "Counter", "deque"}
)


@register
class MutableDefaultRule(Rule):
    """Mutable default arguments are shared across calls (and runs)."""

    name = "mutable-default"
    description = "no mutable default arguments (list/dict/set literals)"

    def _is_mutable(self, node: ast.AST | None) -> bool:
        if node is None:
            return False
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                   ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name is None and isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return name in _MUTABLE_CALLS
        return False

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {node.name!r} is "
                        "evaluated once and shared by every call; default "
                        "to None and build inside",
                    )


# ---------------------------------------------------------------------------
# silent-except
# ---------------------------------------------------------------------------


def _is_broad(node: ast.AST | None) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("Exception", "BaseException")
    if isinstance(node, ast.Tuple):
        return any(_is_broad(e) for e in node.elts)
    return False


def _swallows(body: typing.Sequence[ast.stmt]) -> bool:
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or `...`
        return False
    return True


@register
class SilentExceptRule(Rule):
    """Bare/broad except-pass hides crashed processes and corrupt state."""

    name = "silent-except"
    description = (
        "no bare `except:` and no `except Exception: pass`; failures in "
        "engine hot paths must surface"
    )

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` catches KeyboardInterrupt and hides "
                    "real failures; name the exception",
                )
            elif _is_broad(node.type) and _swallows(node.body):
                yield self.finding(
                    module,
                    node,
                    "broad exception handler silently swallows failures; "
                    "narrow the type or handle the error",
                )
