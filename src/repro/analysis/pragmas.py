"""In-source suppression pragmas for the determinism linter.

Syntax (inside a comment, anywhere on the line)::

    # crayfish: allow[rule-name]: why this exception is deliberate
    # crayfish: allow[rule-a, rule-b]: one reason covering both
    # crayfish: allow-file[rule-name]: whole-file exception (boundary module)

``allow`` suppresses matching findings on the same line, or — when the
pragma is a standalone comment — on the next line. ``allow-file``
suppresses the rule for the whole file; this is how boundary modules
(CLI, dashboards) are allowlisted. A reason after the ``:`` is
mandatory: a pragma without one is itself reported, as is a pragma that
suppresses nothing — the committed suppression inventory must carry a
justification for every exception.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
import typing

_PRAGMA = re.compile(
    r"#\s*crayfish:\s*(?P<kind>allow-file|allow)"
    r"\[(?P<rules>[^\]]*)\]"
    r"\s*(?::\s*(?P<reason>.*\S))?\s*$"
)


@dataclasses.dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment."""

    kind: str  # "allow" | "allow-file"
    rules: tuple[str, ...]
    reason: str
    line: int  # 1-indexed line the comment sits on
    #: Line the pragma applies to ("allow" only): the comment's own line,
    #: or the next line when the comment stands alone.
    target_line: int
    standalone: bool

    def covers(self, rule: str, line: int) -> bool:
        if rule not in self.rules:
            return False
        if self.kind == "allow-file":
            return True
        return line == self.target_line


def parse_pragmas(source: str) -> list[Pragma]:
    """Extract every ``# crayfish:`` pragma from ``source``.

    Uses the tokenizer so pragma-shaped text inside string literals is
    never mistaken for a real suppression.
    """
    pragmas: list[Pragma] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        text = lines[line - 1] if line <= len(lines) else ""
        standalone = text.strip().startswith("#")
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        pragmas.append(
            Pragma(
                kind=match.group("kind"),
                rules=rules,
                reason=(match.group("reason") or "").strip(),
                line=line,
                target_line=line + 1 if standalone else line,
                standalone=standalone,
            )
        )
    return pragmas


def match_pragma(
    pragmas: typing.Sequence[Pragma], rule: str, line: int
) -> Pragma | None:
    """The first pragma suppressing ``rule`` at ``line``, if any.

    Line-scoped pragmas win over file-scoped ones so the inventory
    attributes each suppression to the most specific justification.
    """
    for pragma in pragmas:
        if pragma.kind == "allow" and pragma.covers(rule, line):
            return pragma
    for pragma in pragmas:
        if pragma.kind == "allow-file" and pragma.covers(rule, line):
            return pragma
    return None
