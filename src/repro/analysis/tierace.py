"""Dynamic tie-race tracking: sanitizer-mode scheduler instrumentation.

The kernel resolves events sharing ``(time, priority)`` — one *tie
class* — by insertion sequence. That makes runs reproducible, but any
two tie-class siblings that touch the same shared state with at least
one write encode a hidden ordering dependency: refactors, new
instrumentation, or a different scheduler backend can flip which fires
first and silently change results. :class:`TieTracker` records every
state access with its scheduling context and reports such pairs as
CONFIRMED hazards, with the source site of both accesses.

Causality pruning is what keeps the signal usable: an event scheduled
*while processing* another event in the same tick is caused by it (the
kernel can never pop it first), so accesses along one scheduling chain
are ordered and never conflict. Only accesses from two chains with no
common same-tick ancestor edge compete.

Attach via :func:`repro.simul.core.kernel_overrides`::

    tracker = TieTracker()
    with kernel_overrides(tracker=tracker):
        ExperimentRunner(config).run()
    conflicts, suppressed = tracker.apply_pragmas()
"""

from __future__ import annotations

import dataclasses
import pathlib
import sys
import typing

from repro.analysis.core import Finding
from repro.analysis.pragmas import match_pragma, parse_pragmas

#: Rule name tie conflicts report under (registered as a dynamic
#: pseudo-rule in repro.analysis.races so pragmas validate).
TIE_RACE_RULE = "tie-race"

#: Frames inside these path fragments are kernel plumbing, not the
#: simulation code responsible for the access.
_KERNEL_FRAGMENTS = ("repro/simul/", "repro\\simul\\", "repro/analysis/", "repro\\analysis\\")


@dataclasses.dataclass(frozen=True)
class AccessSite:
    """Where simulation code touched shared state."""

    path: str
    line: int
    function: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line} ({self.function})"


@dataclasses.dataclass(frozen=True)
class TieConflict:
    """Two same-tie-class accesses to one state key, >= 1 write.

    CONFIRMED by construction: both accesses were observed in the same
    ``(time, priority)`` class with no same-tick scheduling edge between
    their entries, so swapping their pop order is a legal schedule.
    """

    time: float
    priority: int
    state: str
    mode_a: str
    mode_b: str
    site_a: AccessSite
    site_b: AccessSite

    def describe(self) -> str:
        return (
            f"tie class (t={self.time:.9g}, prio={self.priority}) on "
            f"{self.state}: {self.mode_a.upper()} at {self.site_a} vs "
            f"{self.mode_b.upper()} at {self.site_b} — pop order decides"
        )

    def findings(self) -> list[Finding]:
        """One finding per involved source site (both stack contexts)."""
        message = "CONFIRMED tie-class conflict: " + self.describe()
        out = [
            Finding(TIE_RACE_RULE, self.site_a.path, self.site_a.line, 0, message)
        ]
        if (self.site_b.path, self.site_b.line) != (
            self.site_a.path,
            self.site_a.line,
        ):
            out.append(
                Finding(
                    TIE_RACE_RULE, self.site_b.path, self.site_b.line, 0, message
                )
            )
        return out


@dataclasses.dataclass
class _Access:
    seq: int
    root: int
    state: str
    mode: str
    site: AccessSite


class TieTracker:
    """Duck-typed kernel tracker (``attach``/``on_schedule``/``on_pop``/
    ``on_state``) recording tie-class state-access conflicts."""

    def __init__(self) -> None:
        #: Finalized, deduplicated conflicts across the whole run.
        self.conflicts: list[TieConflict] = []
        self._seen: set[tuple] = set()
        #: Stable per-object state keys; the keepalive list prevents the
        #: interpreter from recycling an id for a new object mid-run.
        self._state_keys: dict[int, str] = {}
        self._keepalive: list[object] = []
        self._counts: dict[str, int] = {}
        # per-tick scheduling tree and access log
        self._tick_time: float | None = None
        self._parents: dict[int, int] = {}
        self._accesses: dict[int, list[_Access]] = {}
        # entry currently being processed
        self._current_seq: int | None = None
        self._current_time: float = 0.0
        self._current_priority: int = 0
        self.accesses_recorded = 0

    # -- kernel hooks --------------------------------------------------

    def attach(self, env: typing.Any) -> None:
        """A new Environment came up under this tracker; nothing to do —
        per-tick tables key on (time, seq) which restart with it."""

    def on_schedule(self, seq: int, time: float, priority: int) -> None:
        if self._current_seq is not None and time == self._current_time:
            # Same-tick causality edge: `seq` cannot pop before the
            # entry that scheduled it has finished processing.
            self._parents[seq] = self._current_seq

    def on_pop(self, entry: tuple) -> None:
        time, priority, seq = entry[0], entry[1], entry[2]
        if time != self._tick_time:
            self._finalize_tick()
            self._tick_time = time
        self._current_seq = seq
        self._current_time = time
        self._current_priority = priority

    def on_state(self, obj: object, kind: str, mode: str) -> None:
        if self._current_seq is None:
            return  # setup-time access: no tie context yet
        self.accesses_recorded += 1
        root = self._root(self._current_seq)
        self._accesses.setdefault(self._current_priority, []).append(
            _Access(
                seq=self._current_seq,
                root=root,
                state=self._state_key(obj, kind),
                mode=mode,
                site=self._site(),
            )
        )

    # -- internals -----------------------------------------------------

    def _state_key(self, obj: object, kind: str) -> str:
        # id() is within-run identity only — never ordered, compared
        # across runs, or exported; the keepalive pin makes it unique.
        key = id(obj)  # crayfish: allow[id-ordering]: within-run identity key, pinned against reuse, never ordered or exported
        name = self._state_keys.get(key)
        if name is None:
            index = self._counts.get(kind, 0)
            self._counts[kind] = index + 1
            name = f"{kind}#{index}"
            self._state_keys[key] = name
            self._keepalive.append(obj)
        return name

    def _root(self, seq: int) -> int:
        """The oldest same-tick ancestor of ``seq``.

        Two entries conflict only when their ancestor chains are
        disjoint; chains within one tick form a forest, so comparing
        roots is equivalent and O(depth) once per access.
        """
        parents = self._parents
        while seq in parents:
            seq = parents[seq]
        return seq

    @staticmethod
    def _site() -> AccessSite:
        frame = sys._getframe(2)
        while frame is not None:
            filename = frame.f_code.co_filename
            if not any(frag in filename for frag in _KERNEL_FRAGMENTS):
                return AccessSite(
                    path=filename,
                    line=frame.f_lineno,
                    function=frame.f_code.co_name,
                )
            frame = frame.f_back
        return AccessSite(path="<unknown>", line=0, function="<unknown>")

    def _finalize_tick(self) -> None:
        accesses = self._accesses
        self._accesses = {}
        self._parents = {}
        self._current_seq = None
        for priority, log in accesses.items():
            if len(log) < 2:
                continue
            by_state: dict[str, list[_Access]] = {}
            for access in log:
                by_state.setdefault(access.state, []).append(access)
            for state, group in by_state.items():
                self._scan_group(priority, state, group)

    def _scan_group(
        self, priority: int, state: str, group: list[_Access]
    ) -> None:
        # Split by scheduling root: same-root accesses are ordered by
        # construction; cross-root pairs with >= 1 write conflict.
        by_root: dict[int, list[_Access]] = {}
        for access in group:
            by_root.setdefault(access.root, []).append(access)
        if len(by_root) < 2:
            return
        roots = sorted(by_root)
        for i, root_a in enumerate(roots):
            for root_b in roots[i + 1 :]:
                for a in by_root[root_a]:
                    for b in by_root[root_b]:
                        if a.mode != "w" and b.mode != "w":
                            continue
                        self._record(priority, state, a, b)

    def _record(self, priority: int, state: str, a: _Access, b: _Access) -> None:
        first, second = sorted(
            (a, b), key=lambda acc: (acc.site.path, acc.site.line, acc.mode)
        )
        dedupe = (
            state.split("#", 1)[0],
            first.site.path,
            first.site.line,
            second.site.path,
            second.site.line,
        )
        if dedupe in self._seen:
            return
        self._seen.add(dedupe)
        assert self._tick_time is not None
        self.conflicts.append(
            TieConflict(
                time=self._tick_time,
                priority=priority,
                state=state,
                mode_a=first.mode,
                mode_b=second.mode,
                site_a=first.site,
                site_b=second.site,
            )
        )

    # -- reporting -----------------------------------------------------

    def finish(self) -> None:
        """Flush the final tick (call once the run has drained)."""
        self._finalize_tick()
        self._tick_time = None

    def apply_pragmas(
        self,
    ) -> tuple[list[TieConflict], list[TieConflict]]:
        """Split conflicts into (kept, suppressed) using in-source
        ``# crayfish: allow[tie-race]: reason`` pragmas at either access
        site."""
        self.finish()
        pragma_cache: dict[str, typing.Any] = {}

        def pragmas_for(path: str):
            if path not in pragma_cache:
                try:
                    source = pathlib.Path(path).read_text()
                except OSError:
                    pragma_cache[path] = ()
                else:
                    pragma_cache[path] = parse_pragmas(source)
            return pragma_cache[path]

        kept: list[TieConflict] = []
        suppressed: list[TieConflict] = []
        for conflict in self.conflicts:
            matched = any(
                match_pragma(pragmas_for(site.path), TIE_RACE_RULE, site.line)
                for site in (conflict.site_a, conflict.site_b)
            )
            (suppressed if matched else kept).append(conflict)
        return kept, suppressed
