"""Static concurrency-hazard analysis for simulated time.

The simulation kernel resolves same-``(time, priority)`` events in
insertion order, so runs are reproducible — but reproducible is not the
same as *order-independent*: code whose result depends on which tie-class
sibling fires first encodes an accidental schedule, and any refactor that
perturbs insertion order silently changes results. This module is the
static third of ``repro.analysis.races``:

- a :class:`ProcessGraph` over the module's simulation processes
  (generator functions driven by ``env.process`` / yielded events), and
- four lint rules over that graph for the hazard patterns that have
  actually bitten discrete-event codebases: leaked resource slots,
  conditions attached to shared long-lived events, shared mutable state
  written from concurrent processes, and bare same-priority zero
  timeouts.

The dynamic complement lives in :mod:`repro.analysis.tierace` (tie-class
access tracking) and :mod:`repro.analysis.order` (schedule-perturbation
proof); both report through the same rule names so one pragma grammar
covers all three layers.
"""

from __future__ import annotations

import ast
import dataclasses
import typing

from repro.analysis.core import Finding, ModuleContext, Rule, register


# ---------------------------------------------------------------------------
# process graph
# ---------------------------------------------------------------------------


def _func_name_of_call(node: ast.Call) -> str | None:
    """The trailing attribute/name a call targets (``process`` for
    ``self.env.process`` or ``env.process``)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_generator(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested scope: its yields are not ours
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(child))
    return False


#: Call names that turn a generator into a scheduled simulation process.
_SPAWN_CALLS = frozenset({"process", "_spawn", "spawn"})

#: Call names that schedule an event without creating a process.
_SCHEDULE_CALLS = frozenset({"timeout", "service_timeout", "schedule"})


@dataclasses.dataclass
class ProcessInfo:
    """One simulation-process function and what it touches."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Function names this process hands generators to ``env.process``/
    #: ``self._spawn`` for (edges of the spawn graph).
    spawns: list[str]
    #: ``yield from`` targets: same-process continuations, *not*
    #: concurrency edges (a delegated generator runs inline).
    delegates: list[str]
    #: Attribute names written (``self.x = ...`` / ``self.x += ...``).
    writes: dict[str, list[ast.AST]]
    #: Module-level names written via ``global``.
    global_writes: dict[str, list[ast.AST]]


class ProcessGraph:
    """Simulation processes of a module and their spawn/state structure.

    A function is a *process function* when it is a generator that is
    either (a) handed to ``env.process(...)`` / ``self._spawn(...)``
    somewhere in the module, or (b) reached from such a function through
    ``yield from`` delegation. Conservatively, generator methods of
    classes whose instances are never spawned locally (engine adapters
    spawned by a runner in another module) are treated as process
    functions too — concurrency hazards do not respect module borders.
    """

    def __init__(self, module: ModuleContext) -> None:
        self.module = module
        self.processes: dict[str, ProcessInfo] = {}
        spawned_names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = _func_name_of_call(node)
                if name in _SPAWN_CALLS:
                    for arg in node.args:
                        target = self._generator_target(arg)
                        if target is not None:
                            spawned_names.add(target)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_generator(node):
                continue
            self.processes[node.name] = self._analyze(node)
        self.spawned = spawned_names

    @staticmethod
    def _generator_target(arg: ast.AST) -> str | None:
        """``env.process(self._loop(...))`` -> ``_loop``."""
        if isinstance(arg, ast.Call):
            return _func_name_of_call(arg)
        if isinstance(arg, ast.Attribute):
            return arg.attr
        if isinstance(arg, ast.Name):
            return arg.id
        return None

    def _analyze(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> ProcessInfo:
        spawns: list[str] = []
        delegates: list[str] = []
        writes: dict[str, list[ast.AST]] = {}
        global_writes: dict[str, list[ast.AST]] = {}
        declared_global: set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                declared_global.update(child.names)
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                name = _func_name_of_call(child)
                if name in _SPAWN_CALLS:
                    for arg in child.args:
                        target = self._generator_target(arg)
                        if target is not None:
                            spawns.append(target)
            elif isinstance(child, ast.YieldFrom) and isinstance(
                child.value, ast.Call
            ):
                target = _func_name_of_call(child.value)
                if target is not None:
                    delegates.append(target)
            targets: list[ast.AST] = []
            if isinstance(child, ast.Assign):
                targets = list(child.targets)
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                targets = [child.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    writes.setdefault(target.attr, []).append(child)
                elif (
                    isinstance(target, ast.Name)
                    and target.id in declared_global
                ):
                    global_writes.setdefault(target.id, []).append(child)
        return ProcessInfo(node, spawns, delegates, writes, global_writes)

    def concurrent_processes(self) -> list[ProcessInfo]:
        """Process functions that can run as distinct scheduled processes.

        ``yield from`` delegates of exactly one process inline into it and
        are excluded; everything else that is spawned (or is a generator
        method of an externally-driven adapter) counts.
        """
        delegate_counts: dict[str, int] = {}
        for info in self.processes.values():
            for name in info.delegates:
                delegate_counts[name] = delegate_counts.get(name, 0) + 1
        out = []
        for name, info in self.processes.items():
            if name not in self.spawned and delegate_counts.get(name):
                continue  # pure subroutine of its caller(s)
            out.append(info)
        return out


# ---------------------------------------------------------------------------
# race-request-leak
# ---------------------------------------------------------------------------


@register
class RequestLeakRule(Rule):
    """A resource slot acquired outside ``with``/``finally`` can leak.

    A simulation process can be interrupted at any ``yield``; a plain
    ``slot = res.request()`` followed by a release on the happy path only
    returns the slot when nothing interrupts in between. Capacity then
    leaks silently and every later requester queues forever — a deadlock
    that only manifests under fault injection or schedule perturbation.
    """

    name = "race-request-leak"
    description = (
        "resource request() must release on all exit paths: use "
        "`with res.request() as slot:` or try/finally"
    )

    def _protected(self, module: ModuleContext, node: ast.AST) -> bool:
        """Is ``node`` (the request assign) inside a Try with a finally,
        or a With statement item?"""
        current: ast.AST | None = node
        while current is not None:
            if isinstance(current, ast.Try) and current.finalbody:
                return True
            current = module.parent(current)
        return False

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        graph = ProcessGraph(module)
        for info in graph.processes.values():
            function = info.node
            # name -> the assignment node that bound it to a .request()
            requests: dict[str, ast.AST] = {}
            releases: set[str] = set()
            escapes: set[str] = set()
            # names released inside a finally block: the canonical safe
            # idiom is `slot = res.request()` right before the try, with
            # the release in its finalbody — protected even though the
            # assign itself sits outside the Try.
            finally_releases: set[str] = set()
            for child in ast.walk(function):
                if isinstance(child, ast.Try) and child.finalbody:
                    for stmt in child.finalbody:
                        for sub in ast.walk(stmt):
                            if (
                                isinstance(sub, ast.Call)
                                and _func_name_of_call(sub) == "release"
                            ):
                                for arg in sub.args:
                                    if isinstance(arg, ast.Name):
                                        finally_releases.add(arg.id)
            for child in ast.walk(function):
                if isinstance(child, ast.Assign) and isinstance(
                    child.value, ast.Call
                ):
                    called = _func_name_of_call(child.value)
                    if called == "request" and len(child.targets) == 1:
                        target = child.targets[0]
                        if isinstance(target, ast.Name):
                            requests[target.id] = child
                if isinstance(child, ast.withitem) or isinstance(
                    child, ast.With
                ):
                    continue
                if isinstance(child, ast.Call):
                    called = _func_name_of_call(child)
                    if called == "release":
                        for arg in child.args:
                            if isinstance(arg, ast.Name):
                                releases.add(arg.id)
                    else:
                        # Slot handed to another function (e.g. a spawned
                        # cleanup process): ownership moved, not leaked.
                        for arg in child.args:
                            if isinstance(arg, ast.Name) and called not in (
                                "request",
                            ):
                                escapes.add(arg.id)
            # `with res.request() as slot:` binds via withitem, not
            # Assign, so it never lands in `requests` — by construction
            # the context manager releases.
            for name, assign in requests.items():
                if name in finally_releases or self._protected(module, assign):
                    continue
                if name not in releases and name not in escapes:
                    yield self.finding(
                        module,
                        assign,
                        f"process {function.name!r} requests a slot into "
                        f"{name!r} but never releases it; an interrupt at "
                        "any later yield leaks capacity — use `with "
                        "res.request() as ...:` or try/finally",
                    )
                elif name in releases:
                    yield self.finding(
                        module,
                        assign,
                        f"process {function.name!r} releases {name!r} only "
                        "on the happy path; an interrupt between request "
                        "and release leaks the slot — move the release "
                        "into a finally or use the context manager",
                    )


# ---------------------------------------------------------------------------
# race-shared-condition
# ---------------------------------------------------------------------------


_CONDITION_CALLS = frozenset({"any_of", "all_of"})


@register
class SharedConditionRule(Rule):
    """A condition over shared events plants callbacks that outlive you.

    ``env.any_of([...])`` appends a ``_check`` callback to every child
    event. When a child is a *shared, long-lived* event (an attribute of
    some object, not an event created for this wait), that callback
    survives the waiter unless the wait is explicitly cancelled — firing
    later against a dead process, or accumulating unboundedly.
    """

    name = "race-shared-condition"
    description = (
        "any_of/all_of over shared (attribute-held) events leaks "
        "condition callbacks; scope events to the wait or cancel them"
    )

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _func_name_of_call(node) not in _CONDITION_CALLS:
                continue
            elements: list[ast.AST] = []
            for arg in node.args:
                if isinstance(arg, (ast.List, ast.Tuple)):
                    elements.extend(arg.elts)
                else:
                    elements.append(arg)
            for element in elements:
                if isinstance(element, ast.Attribute):
                    yield self.finding(
                        module,
                        element,
                        f"condition child {ast.unparse(element)!r} is a "
                        "shared long-lived event: the condition's _check "
                        "callback stays attached to it after this wait "
                        "resolves or the waiter dies; create the event "
                        "for this wait, or cancel the losers explicitly",
                    )


# ---------------------------------------------------------------------------
# race-shared-state
# ---------------------------------------------------------------------------


def _write_kind(node: ast.AST) -> tuple[str, object]:
    """Classify a write for order-independence.

    ``("counter", None)`` — ``+=``/``-=``: commutes with itself.
    ``("const", value)`` — assignment of a literal: order-free only when
    every concurrent writer assigns the *same* literal.
    ``("decl", None)`` — bare annotation, not a real write.
    ``("other", None)`` — anything else: order decides the survivor.
    """
    if isinstance(node, ast.AugAssign) and isinstance(
        node.op, (ast.Add, ast.Sub)
    ):
        return ("counter", None)
    if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
        return ("const", node.value.value)
    if isinstance(node, ast.AnnAssign):
        if node.value is None:
            return ("decl", None)
        if isinstance(node.value, ast.Constant):
            return ("const", node.value.value)
    return ("other", None)


def _group_commutes(nodes: typing.Sequence[ast.AST]) -> bool:
    """Is this set of concurrent writes order-independent as a whole?"""
    kinds = [_write_kind(node) for node in nodes]
    tags = {tag for tag, __ in kinds if tag != "decl"}
    if not tags:
        return True
    if tags == {"counter"}:
        return True
    if tags == {"const"}:
        values = {repr(value) for tag, value in kinds if tag == "const"}
        return len(values) <= 1
    return False


@register
class SharedStateRule(Rule):
    """Mutable state written from two concurrent processes is a race.

    Two process functions writing the same instance attribute (or module
    global) with no happens-before edge make the surviving value a
    function of tie-class pop order. Commutative updates (``+=`` counters,
    identical-constant flags) are exempt; everything else needs a single
    owner or an explicit ordering.
    """

    name = "race-shared-state"
    description = (
        "no instance/module state non-commutatively written from >= 2 "
        "concurrent process functions"
    )

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        graph = ProcessGraph(module)
        concurrent = graph.concurrent_processes()
        # attr -> [(process, write node), ...]
        by_attr: dict[str, list[tuple[ProcessInfo, ast.AST]]] = {}
        by_global: dict[str, list[tuple[ProcessInfo, ast.AST]]] = {}
        for info in concurrent:
            for attr, nodes in info.writes.items():
                for node in nodes:
                    by_attr.setdefault(attr, []).append((info, node))
            for name, nodes in info.global_writes.items():
                for node in nodes:
                    by_global.setdefault(name, []).append((info, node))
        for table, what in ((by_attr, "attribute"), (by_global, "global")):
            for key, sites in table.items():
                owners = {info.node.name for info, __ in sites}
                if len(owners) < 2:
                    continue
                if _group_commutes([node for __, node in sites]):
                    continue
                for info, node in sites:
                    if _write_kind(node)[0] == "decl":
                        continue
                    others = sorted(owners - {info.node.name})
                    yield self.finding(
                        module,
                        node,
                        f"{what} {key!r} is written by process "
                        f"{info.node.name!r} and also by {', '.join(others)}"
                        "; with no happens-before edge the surviving value "
                        "depends on event-tie pop order — give the state "
                        "one owner or make the update commutative",
                    )


# ---------------------------------------------------------------------------
# race-zero-timeout
# ---------------------------------------------------------------------------


@register
class ZeroTimeoutRule(Rule):
    """``timeout(0)`` schedules into the *current* tie class.

    A zero-delay timeout at NORMAL priority lands in the same
    ``(time, priority)`` class as every other event scheduled this tick:
    whatever ordering the author hoped to express is actually decided by
    insertion sequence. Either the ordering doesn't matter (then the wait
    is pointless) or it does (then it must be expressed with URGENT
    priority or an explicit event chain).
    """

    name = "race-zero-timeout"
    description = (
        "no bare timeout(0)/service_timeout(0): same-priority zero delays "
        "resolve by insertion order, not by intent"
    )

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _func_name_of_call(node)
            if name not in ("timeout", "service_timeout"):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if (
                isinstance(first, ast.Constant)
                and isinstance(first.value, (int, float))
                and not isinstance(first.value, bool)
                and first.value == 0
                and not any(k.arg == "priority" for k in node.keywords)
            ):
                yield self.finding(
                    module,
                    node,
                    f"{name}(0) re-enters the current tie class at the same "
                    "priority: it yields the turn to an insertion-order-"
                    "decided sibling, not to a defined successor; schedule "
                    "with an explicit priority or restructure the handoff",
                )


# ---------------------------------------------------------------------------
# tie-race (dynamic pseudo-rule)
# ---------------------------------------------------------------------------


@register
class TieRaceRule(Rule):
    """Placeholder for the *dynamic* tie tracker's findings.

    The rule itself finds nothing statically; it exists so that
    ``# crayfish: allow[tie-race]: reason`` pragmas parse, validate, and
    appear in the suppression inventory, and so reports from
    :mod:`repro.analysis.tierace` flow through the same machinery as
    static findings.
    """

    name = "tie-race"
    description = (
        "dynamic: conflicting same-tie-class state accesses recorded by "
        "the tie tracker (crayfish run --tie-track)"
    )
    dynamic = True

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        return iter(())
