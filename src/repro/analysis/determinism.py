"""Dual-run determinism verification: run twice, byte-diff everything.

``crayfish verify-determinism`` executes the same ``(config, seed)``
scenario twice — with tracing and metrics fully on, optionally under the
runtime sanitizer — and compares the *serialized artifacts* byte for
byte: the results JSON, the OpenMetrics exposition, the scraped metrics
timeline, and the Chrome trace export. Comparing exports rather than
in-memory objects is deliberate: it is exactly the surface a reader of
the paper's numbers sees, so any ordering or formatting nondeterminism
that would pollute published results fails the check.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import typing

from repro.config import ExperimentConfig, SPS_NAMES
from repro.core.results_io import result_to_dict
from repro.core.runner import ExperimentRunner
from repro.metrics.export import openmetrics_text, timeline_rows
from repro.tracing.export import chrome_trace
from repro.analysis.sanitizer import determinism_sanitizer

#: Artifact names, in report order.
ARTIFACTS = ("results.json", "metrics.txt", "metrics.jsonl", "trace.json")


@dataclasses.dataclass(frozen=True)
class EngineVerdict:
    """Outcome of the dual-run check for one engine."""

    sps: str
    identical: bool
    #: artifact name -> (sha256 of run 1, sha256 of run 2)
    digests: tuple[tuple[str, str, str], ...]

    @property
    def mismatched(self) -> tuple[str, ...]:
        return tuple(
            name for name, first, second in self.digests if first != second
        )


def run_fingerprints(
    config: ExperimentConfig, sanitize: bool = True
) -> dict[str, bytes]:
    """Execute one fully instrumented run and serialize its artifacts."""
    guard = determinism_sanitizer() if sanitize else contextlib.nullcontext()
    with guard:
        result = ExperimentRunner(config).run(trace=True, metrics=True)
    timeline = "\n".join(
        json.dumps(row, sort_keys=True) for row in timeline_rows(result.telemetry.scraper)
    )
    return {
        "results.json": json.dumps(
            result_to_dict(result), sort_keys=True
        ).encode(),
        "metrics.txt": openmetrics_text(result.telemetry.registry).encode(),
        "metrics.jsonl": timeline.encode(),
        "trace.json": json.dumps(
            chrome_trace(result.trace), sort_keys=True
        ).encode(),
    }


def verify_engine(
    config: ExperimentConfig, sanitize: bool = True
) -> EngineVerdict:
    """Run ``config`` twice and byte-compare every artifact."""
    first = run_fingerprints(config, sanitize=sanitize)
    second = run_fingerprints(config, sanitize=sanitize)
    digests = tuple(
        (
            name,
            hashlib.sha256(first[name]).hexdigest(),
            hashlib.sha256(second[name]).hexdigest(),
        )
        for name in ARTIFACTS
    )
    return EngineVerdict(
        sps=config.sps,
        identical=all(a == b for __, a, b in digests),
        digests=digests,
    )


def verify_determinism(
    base: ExperimentConfig,
    engines: typing.Sequence[str] = SPS_NAMES,
    sanitize: bool = True,
) -> list[EngineVerdict]:
    """The full gate: dual-run byte-diff for each requested engine."""
    verdicts = []
    for sps in engines:
        config = dataclasses.replace(base, sps=sps)
        verdicts.append(verify_engine(config, sanitize=sanitize))
    return verdicts
