"""Lint framework core: module context, rule registry, lint drivers.

A :class:`Rule` inspects one parsed module and yields
:class:`Finding`\\ s. The drivers (:func:`lint_source`,
:func:`lint_file`, :func:`lint_paths`) parse, run every registered rule,
apply pragma suppressions (:mod:`repro.analysis.pragmas`), and validate
the pragmas themselves — a pragma without a reason, naming an unknown
rule, or suppressing nothing is reported as a finding of the built-in
``pragma`` meta-rule (which is itself never suppressible).
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import typing

from repro.analysis.pragmas import Pragma, match_pragma, parse_pragmas

#: Rule name reserved for pragma-hygiene findings.
PRAGMA_RULE = "pragma"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Suppressed:
    """A finding silenced by a pragma (kept for the inventory)."""

    finding: Finding
    pragma: Pragma


@dataclasses.dataclass(frozen=True)
class FileReport:
    """Everything the linter decided about one file."""

    path: str
    findings: tuple[Finding, ...]
    suppressed: tuple[Suppressed, ...]
    pragmas: tuple[Pragma, ...]

    @property
    def clean(self) -> bool:
        return not self.findings


class ModuleContext:
    """A parsed module plus the shared lookups rules need."""

    def __init__(self, source: str, path: str, tree: ast.Module) -> None:
        self.source = source
        self.path = path
        self.tree = tree
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        #: name -> fully qualified import target. ``import numpy as np``
        #: maps ``np -> numpy``; ``from time import sleep as zzz`` maps
        #: ``zzz -> time.sleep``.
        self.imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def qualified(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to its imported dotted path.

        Returns None when the chain is not rooted at an imported name —
        ``self.time.time`` never resolves to the ``time`` module.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


class Rule:
    """Base class for lint rules. Subclasses register themselves."""

    #: Kebab-case identifier used in reports and pragmas.
    name: typing.ClassVar[str] = ""
    #: One-line summary for ``crayfish lint --rules``.
    description: typing.ClassVar[str] = ""
    #: Dynamic rules report at runtime (sanitizer/tracker layers), not
    #: from the static pass: their pragmas legitimately suppress nothing
    #: during a lint and are exempt from dead-pragma hygiene.
    dynamic: typing.ClassVar[bool] = False

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY or cls.name == PRAGMA_RULE:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def rule_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def make_rules(names: typing.Sequence[str] | None = None) -> list[Rule]:
    """Instantiate the requested rules (all registered ones by default)."""
    if names is None:
        names = rule_names()
    unknown = [n for n in names if n not in _REGISTRY]
    if unknown:
        raise ValueError(f"unknown lint rule(s): {', '.join(sorted(unknown))}")
    return [_REGISTRY[name]() for name in sorted(names)]


def _pragma_findings(
    pragmas: typing.Sequence[Pragma],
    used: typing.Collection[Pragma],
    path: str,
    active: typing.Collection[str] | None = None,
) -> list[Finding]:
    """Pragma hygiene: reasons are mandatory, dead pragmas are errors.

    A pragma can only be proven dead when every rule it names actually
    ran: under ``--select``/``--ignore`` the unselected rules' pragmas
    are left alone rather than reported as suppressing nothing.
    """
    findings = []
    known = set(rule_names())
    if active is None:
        active = known
    for pragma in pragmas:
        for rule in pragma.rules:
            if rule not in known:
                findings.append(
                    Finding(
                        PRAGMA_RULE, path, pragma.line, 0,
                        f"pragma names unknown rule {rule!r}",
                    )
                )
        if not pragma.reason:
            findings.append(
                Finding(
                    PRAGMA_RULE, path, pragma.line, 0,
                    "pragma has no reason; write "
                    "'# crayfish: allow[rule]: why this is safe'",
                )
            )
        elif (
            pragma not in used
            and all(r in known for r in pragma.rules)
            and all(r in active for r in pragma.rules)
            and not any(
                _REGISTRY[r].dynamic for r in pragma.rules if r in _REGISTRY
            )
        ):
            findings.append(
                Finding(
                    PRAGMA_RULE, path, pragma.line, 0,
                    f"pragma allow[{', '.join(pragma.rules)}] suppresses "
                    "nothing; remove it",
                )
            )
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    rules: typing.Sequence[Rule] | None = None,
) -> FileReport:
    """Lint one module given as text."""
    if rules is None:
        rules = make_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        finding = Finding(
            PRAGMA_RULE, path, error.lineno or 0, error.offset or 0,
            f"file does not parse: {error.msg}",
        )
        return FileReport(path, (finding,), (), ())
    module = ModuleContext(source, path, tree)
    pragmas = parse_pragmas(source)
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(module))
    raw.sort(key=lambda f: (f.line, f.col, f.rule))
    kept: list[Finding] = []
    suppressed: list[Suppressed] = []
    used: list[Pragma] = []
    for finding in raw:
        pragma = match_pragma(pragmas, finding.rule, finding.line)
        if pragma is None:
            kept.append(finding)
        else:
            suppressed.append(Suppressed(finding, pragma))
            if pragma not in used:
                used.append(pragma)
    kept.extend(
        _pragma_findings(pragmas, used, path, {rule.name for rule in rules})
    )
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    return FileReport(path, tuple(kept), tuple(suppressed), tuple(pragmas))


def lint_file(
    path: str | pathlib.Path, rules: typing.Sequence[Rule] | None = None
) -> FileReport:
    target = pathlib.Path(path)
    return lint_source(target.read_text(), str(target), rules)


def iter_python_files(
    paths: typing.Sequence[str | pathlib.Path],
) -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[pathlib.Path] = []
    for entry in paths:
        target = pathlib.Path(entry)
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        elif target.suffix == ".py":
            files.append(target)
        else:
            raise FileNotFoundError(f"not a python file or directory: {target}")
    return files


def lint_paths(
    paths: typing.Sequence[str | pathlib.Path],
    rules: typing.Sequence[Rule] | None = None,
) -> list[FileReport]:
    """Lint every ``.py`` file under the given files/directories."""
    if rules is None:
        rules = make_rules()
    return [lint_file(f, rules) for f in iter_python_files(paths)]
