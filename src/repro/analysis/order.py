"""Schedule-perturbation proof harness (``crayfish verify-order``).

Determinism (same inputs, same outputs) does not prove order
*independence*: results may be reproducible only because the scheduler
happens to resolve event ties the same way every run. This harness
attacks that directly, DPOR-lite: it re-runs an experiment under a
seeded :class:`~repro.simul.scheduler.PermutedScheduler` — which pops a
pseudo-random member of each ``(time, priority)`` tie class instead of
the lowest insertion sequence, while still respecting causality (an
event scheduled mid-tick only becomes poppable after its creator ran) —
and byte-diffs all serialized exports against the unperturbed baseline.

Byte-identical exports across permutations are a *proof* that no
tie-order dependency reaches any published surface. A diff is a
CONFIRMED ordering hazard; pair it with ``crayfish run --tie-track`` to
locate the conflicting access sites.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

from repro.analysis.determinism import ARTIFACTS, run_fingerprints
from repro.config import ExperimentConfig, SPS_NAMES
from repro.simul.core import kernel_overrides


@dataclasses.dataclass(frozen=True)
class PermutationResult:
    """Byte-comparison of one perturbed run against the baseline."""

    seed: int
    scheduler: str
    #: Artifacts whose bytes differ from the unperturbed baseline.
    mismatched: tuple[str, ...]

    @property
    def identical(self) -> bool:
        return not self.mismatched


@dataclasses.dataclass(frozen=True)
class OrderVerdict:
    """Outcome of the perturbation proof for one engine."""

    sps: str
    #: sha256 of each baseline artifact (calendar backend, no perturb).
    baseline: tuple[tuple[str, str], ...]
    permutations: tuple[PermutationResult, ...]
    #: True when the heap backend's unperturbed run matches calendar's.
    backends_agree: bool

    @property
    def identical(self) -> bool:
        return self.backends_agree and all(
            p.identical for p in self.permutations
        )

    @property
    def mismatched(self) -> tuple[str, ...]:
        out = []
        if not self.backends_agree:
            out.append("heap-vs-calendar baseline")
        for perm in self.permutations:
            for name in perm.mismatched:
                out.append(f"{perm.scheduler} seed={perm.seed}: {name}")
        return tuple(out)


def _digest(artifacts: dict[str, bytes]) -> dict[str, str]:
    return {
        name: hashlib.sha256(artifacts[name]).hexdigest() for name in ARTIFACTS
    }


def verify_engine_order(
    config: ExperimentConfig,
    permutations: int = 3,
    schedulers: typing.Sequence[str] = ("calendar", "heap"),
    sanitize: bool = True,
) -> OrderVerdict:
    """Perturbation-proof one engine config.

    Runs the unperturbed baseline on every scheduler backend (they must
    already agree — that is the tie-class contract), then ``permutations``
    seeded tie-permutation runs per backend, each byte-compared to the
    baseline.
    """
    if permutations < 1:
        raise ValueError(f"permutations must be >= 1, got {permutations}")
    baselines: dict[str, dict[str, bytes]] = {}
    for backend in schedulers:
        with kernel_overrides(scheduler=backend):
            baselines[backend] = run_fingerprints(config, sanitize=sanitize)
    reference = baselines[schedulers[0]]
    backends_agree = all(
        baselines[backend] == reference for backend in schedulers
    )
    results: list[PermutationResult] = []
    for backend in schedulers:
        for seed in range(1, permutations + 1):
            with kernel_overrides(scheduler=backend, perturb_seed=seed):
                perturbed = run_fingerprints(config, sanitize=sanitize)
            mismatched = tuple(
                name for name in ARTIFACTS if perturbed[name] != reference[name]
            )
            results.append(
                PermutationResult(
                    seed=seed, scheduler=backend, mismatched=mismatched
                )
            )
    digests = tuple(sorted(_digest(reference).items()))
    return OrderVerdict(
        sps=config.sps,
        baseline=digests,
        permutations=tuple(results),
        backends_agree=backends_agree,
    )


def verify_order(
    base: ExperimentConfig,
    engines: typing.Sequence[str] = SPS_NAMES,
    permutations: int = 3,
    schedulers: typing.Sequence[str] = ("calendar", "heap"),
    sanitize: bool = True,
) -> list[OrderVerdict]:
    """The full gate: the perturbation proof for each requested engine."""
    verdicts = []
    for sps in engines:
        config = dataclasses.replace(base, sps=sps)
        verdicts.append(
            verify_engine_order(
                config,
                permutations=permutations,
                schedulers=schedulers,
                sanitize=sanitize,
            )
        )
    return verdicts
