"""Runtime determinism sanitizer: make forbidden calls raise, loudly.

The linter catches what the AST shows; the sanitizer catches what it
cannot — dynamic dispatch, third-party callbacks, getattr tricks. Inside
:func:`determinism_sanitizer`, every wall-clock and global-RNG entry
point is monkeypatched to raise :class:`DeterminismViolation`, so a
simulated run that sneaks a ``time.time()`` or ``random.random()`` call
fails immediately at the offending frame instead of silently producing
irreproducible numbers.

The patch set mirrors the static rules: ``time.*`` clock/sleep
functions, the stdlib ``random`` module-level API (the hidden global
``Random`` instance), numpy's legacy global ``np.random.*`` draws, and
unseeded ``np.random.default_rng()`` (seeded calls pass through — an
explicit seed is exactly what determinism requires).

Patch targets are looked up by name with ``getattr`` so this module
never references a forbidden function directly — the sanitizer itself
lints clean.
"""

from __future__ import annotations

import contextlib
import random
import time
import typing

import numpy as np


class DeterminismViolation(RuntimeError):
    """A forbidden nondeterministic entry point was called during a run."""


_TIME_NAMES = (
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "sleep",
)

_RANDOM_NAMES = (
    "seed",
    "random",
    "uniform",
    "randint",
    "randrange",
    "getrandbits",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "triangular",
)

_NP_RANDOM_NAMES = (
    "seed",
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "ranf",
    "sample",
    "bytes",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "lognormal",
    "exponential",
    "poisson",
    "binomial",
    "get_state",
    "set_state",
)


def _raiser(qualname: str) -> typing.Callable:
    def forbidden(*args: object, **kwargs: object) -> typing.NoReturn:
        raise DeterminismViolation(
            f"{qualname}() called during a sanitized run: results would "
            "not be a pure function of (config, seed). Route timing "
            "through Environment.now and randomness through "
            "repro.simul.rng.RandomStreams."
        )

    forbidden.__name__ = qualname.rsplit(".", 1)[-1]
    return forbidden


def _guarded_default_rng(
    original: typing.Callable,
) -> typing.Callable:
    def default_rng(*args: object, **kwargs: object) -> object:
        if not args and not kwargs:
            raise DeterminismViolation(
                "np.random.default_rng() without a seed draws OS entropy; "
                "pass an explicit seed or use RandomStreams"
            )
        return original(*args, **kwargs)

    return default_rng


@contextlib.contextmanager
def determinism_sanitizer() -> typing.Iterator[None]:
    """Context manager: forbidden entry points raise inside the block.

    Patches are process-global while active (that is the point: they
    catch calls from *anywhere* in the run) and restored on exit, even
    when the block raises.
    """
    saved: list[tuple[object, str, object]] = []

    def patch(module: object, name: str, replacement: object) -> None:
        saved.append((module, name, getattr(module, name)))
        setattr(module, name, replacement)

    try:
        for name in _TIME_NAMES:
            patch(time, name, _raiser(f"time.{name}"))
        for name in _RANDOM_NAMES:
            patch(random, name, _raiser(f"random.{name}"))
        for name in _NP_RANDOM_NAMES:
            patch(np.random, name, _raiser(f"np.random.{name}"))
        patch(
            np.random,
            "default_rng",
            # crayfish: allow[global-random]: the sanitizer itself wraps default_rng to reject unseeded calls
            _guarded_default_rng(np.random.default_rng),
        )
        yield
    finally:
        for module, name, original in reversed(saved):
            setattr(module, name, original)
