"""Benchmarking every model class the paper's generator covers (§4.1).

"The data generator is general enough to cover a wide range of ML
models": 2D/3D tensors for CNNs, sequence data for RNNs, and
autoencoders producing compact representations. This tour runs a real
forward pass of each class, then benchmarks the same architectures in
the streaming pipeline across an embedded and an external serving tool.

Run:  python examples/model_class_tour.py
"""

import numpy as np

from repro.config import ExperimentConfig
from repro.core.report import format_table
from repro.core.runner import run_experiment
from repro.nn.zoo import build_autoencoder, build_ffnn, build_gru, model_info

MODELS = {
    "ffnn": "dense classifier (Fashion-MNIST images)",
    "gru": "RNN over 32-step sensor sequences",
    "autoencoder": "compact-representation reconstructor",
    "mobilenet": "depthwise-separable CNN (224x224 images)",
}


def real_forward_demo() -> None:
    rng = np.random.default_rng(0)

    ffnn = build_ffnn(initialize=True, seed=0)
    images = rng.random((4, 28, 28), dtype=np.float32)
    print("ffnn        ->", ffnn.predict(images).argmax(axis=1), "(class ids)")

    gru = build_gru(initialize=True, seed=0)
    sequences = rng.standard_normal((4, 32, 64)).astype(np.float32)
    print("gru         ->", gru.predict(sequences).argmax(axis=1), "(class ids)")

    autoencoder = build_autoencoder(initialize=True, seed=0)
    windows = rng.random((4, 28, 28), dtype=np.float32)
    errors = ((autoencoder.predict(windows) - windows.reshape(4, -1)) ** 2).mean(axis=1)
    print("autoencoder ->", np.round(errors, 4), "(reconstruction errors)")


def streaming_benchmark() -> None:
    rows = []
    for model, description in MODELS.items():
        info = model_info(model)
        for tool in ("onnx", "tf_serving"):
            duration = 10.0 if model == "mobilenet" else 3.0
            result = run_experiment(
                ExperimentConfig(
                    sps="flink", serving=tool, model=model,
                    ir=None, duration=duration,
                )
            )
            rows.append(
                (
                    model,
                    f"{info.flops_per_point / 1e6:,.2f}",
                    tool,
                    f"{result.throughput:,.1f}",
                )
            )
        rows.append(("", "", "", ""))
    print(
        format_table(
            ["model", "MFLOPs/point", "serving tool", "events/s"],
            rows[:-1],
            title="Streaming-inference throughput per model class (Flink, mp=1)",
        )
    )


def main() -> None:
    print("Real forward passes, one per model class:")
    real_forward_demo()
    print()
    streaming_benchmark()
    print()
    for model, description in MODELS.items():
        print(f"  {model:12s} {description}")


if __name__ == "__main__":
    main()
