"""Bursty IoT workload: can the pipeline absorb traffic spikes?

The paper's motivating IoT scenario (§2.2.2, §5.1.4): sensors mostly
trickle data but periodically flood the pipeline above its sustainable
throughput. This example measures the sustainable throughput of two
candidate configurations, then drives both with periodic bursts (110%
of ST for `bd` seconds, 70% between bursts) and reports how long each
takes to re-stabilize after every burst.

Run:  python examples/bursty_iot.py
"""

import statistics

from repro.config import ExperimentConfig
from repro.core.report import format_table
from repro.core.scenarios import measure_sustainable_throughput, run_burst_scenario

CANDIDATES = ["onnx", "tf_serving"]


def main() -> None:
    rows = []
    for tool in CANDIDATES:
        config = ExperimentConfig(
            sps="flink",
            serving=tool,
            model="ffnn",
            bd=3.0,  # burst duration (scaled 10x down from the paper's 30 s)
            tbb=12.0,  # time between bursts (paper: 120 s)
            duration=2.0,
        )
        st = measure_sustainable_throughput(config, seeds=(0,)).mean
        recoveries = []
        for seed in (0, 1):
            scenario = run_burst_scenario(config, st, bursts=3, seed=seed)
            recoveries.extend(scenario.recovery_times)
        rows.append(
            (
                tool,
                f"{st:,.0f}",
                f"{min(recoveries):.2f} s",
                f"{statistics.fmean(recoveries):.2f} s",
                f"{statistics.pstdev(recoveries):.2f} s",
            )
        )
    print(
        format_table(
            ["tool", "sustainable ev/s", "best recovery", "mean recovery", "std"],
            rows,
            title="Burst absorption on Flink (3 s bursts at 110% ST, 12 s valleys)",
        )
    )
    print()
    print(
        "Reading the table: the external server can recover faster at its\n"
        "best, but varies burst to burst; the embedded library is slower\n"
        "but predictable — the paper's Fig. 8 takeaway."
    )
    print()
    backlog_timeline()


def backlog_timeline() -> None:
    """Watch the input-topic backlog build and drain across bursts."""
    from repro.config import WorkloadKind
    from repro.core.ascii_chart import render_chart
    from repro.core.runner import ExperimentRunner
    from repro.core.scenarios import measure_sustainable_throughput

    config = ExperimentConfig(
        sps="flink", serving="onnx", model="ffnn", duration=2.0
    )
    st = measure_sustainable_throughput(config, seeds=(0,)).mean
    bursty = config.replace(
        workload=WorkloadKind.PERIODIC_BURSTS,
        ir=st,
        bd=3.0,
        tbb=12.0,
        duration=32.0,
        warmup_fraction=0.0,
    )
    result = ExperimentRunner(bursty).run(backlog_probe_interval=0.2)
    print(
        render_chart(
            {"input backlog (events)": list(result.backlog_series)},
            title="Broker backlog during two burst cycles",
            x_label="time (s)",
            height=10,
        )
    )


if __name__ == "__main__":
    main()
