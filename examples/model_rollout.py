"""Rolling out a new model version with zero downtime (§7.2).

The paper's discussion argues external serving wins in production
because model management — versioning, rollouts, multi-model hosting —
is native there, while embedded serving couples the model's lifecycle to
the streaming job's. This example measures exactly that: a steady
scoring stream is hit by a v1 -> v2 model rollout, once against an
external multi-model server (background warm-load, atomic switch) and
once against an embedded library (engine quiesced while weights reload).

Run:  python examples/model_rollout.py
"""

from repro import calibration as cal
from repro.core.report import format_table
from repro.nn.zoo import model_info
from repro.serving import create_serving_tool
from repro.serving.costs import ServingCostModel
from repro.serving.external.multi_model import MultiModelServer
from repro.simul import Environment

REQUEST_INTERVAL = 0.02  # 50 requests/s
ROLLOUT_AT = 1.0
HORIZON = 4.0


def costs(tool: str) -> ServingCostModel:
    return ServingCostModel(cal.SERVING_PROFILES[tool], model_info("ffnn"))


def rollout_external() -> list[tuple[float, float]]:
    """(time, latency) of every request around an external rollout."""
    env = Environment()
    server = MultiModelServer(env)
    samples = []

    def client():
        while env.now < HORIZON:
            result, __ = yield from server.score("m", 1)
            samples.append((env.now, result.service_time))
            yield env.timeout(REQUEST_INTERVAL)

    def driver():
        yield from server.deploy("m", "v1", costs("tf_serving"))
        env.process(client())
        yield env.timeout(ROLLOUT_AT)
        yield from server.deploy("m", "v2", costs("tf_serving"))

    env.process(driver())
    env.run()
    return samples


def rollout_embedded() -> list[tuple[float, float]]:
    """(time, latency) of every request around an embedded model swap."""
    env = Environment()
    tool = create_serving_tool("onnx", env, "ffnn")
    samples = []

    def client():
        while env.now < HORIZON:
            result = yield from tool.score(1)
            samples.append((env.now, result.service_time))
            yield env.timeout(REQUEST_INTERVAL)

    def driver():
        yield from tool.load()
        env.process(client())
        yield env.timeout(ROLLOUT_AT)
        yield from tool.swap_model(costs("onnx"))

    env.process(driver())
    env.run()
    return samples


def summarize(samples: list[tuple[float, float]]) -> tuple[float, float]:
    latencies = [latency for __, latency in samples]
    return sum(latencies) / len(latencies), max(latencies)


def main() -> None:
    external_mean, external_worst = summarize(rollout_external())
    embedded_mean, embedded_worst = summarize(rollout_embedded())
    print(
        format_table(
            ["deployment", "mean latency (ms)", "worst request during rollout (ms)"],
            [
                ("external multi-model server", f"{external_mean * 1e3:.2f}",
                 f"{external_worst * 1e3:.2f}"),
                ("embedded library (swap in place)", f"{embedded_mean * 1e3:.2f}",
                 f"{embedded_worst * 1e3:.2f}"),
            ],
            title="v1 -> v2 model rollout under a 50 req/s scoring stream",
        )
    )
    print()
    print(
        "The external server warm-loads v2 in the background and flips\n"
        "traffic atomically — no request notices. The embedded library\n"
        "must quiesce its engine to replace the weights, so one request\n"
        "stalls for the entire model load (§7.2's model-management gap)."
    )


if __name__ == "__main__":
    main()
