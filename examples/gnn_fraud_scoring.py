"""Serving a Graph Neural Network over a stream (the paper's §9).

The paper's conclusion flags GNNs as the model class streaming inference
cannot yet handle gracefully: scoring one node needs its k-hop
neighborhood read from historical state, not just the event payload.
This example implements that future-work scenario:

1. trains-free demo: a real NumPy GCN classifies account nodes in a
   synthetic transaction graph (fraud / legit probabilities),
2. streaming side: the same architecture is served behind the embedded
   GNN tool, where each request first pulls its neighborhood from a
   simulated RocksDB-like state store, and
3. a sweep over hop depth and cache hit ratio shows how quickly state
   I/O — not inference — becomes the latency budget.

Run:  python examples/gnn_fraud_scoring.py
"""

import numpy as np

from repro import calibration as cal
from repro.core.report import format_table
from repro.nn.gnn import build_gcn
from repro.nn.zoo import ModelInfo
from repro.serving.costs import ServingCostModel
from repro.serving.embedded.gnn import GnnEmbeddedTool
from repro.serving.state import StateStore
from repro.simul import Environment


def random_transaction_graph(nodes: int, degree: int, seed: int) -> np.ndarray:
    """A symmetric random graph: accounts linked by transactions."""
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((nodes, nodes), dtype=np.float32)
    for node in range(nodes):
        partners = rng.choice(nodes, size=degree, replace=False)
        for partner in partners:
            if partner != node:
                adjacency[node, partner] = adjacency[partner, node] = 1.0
    return adjacency


def measure_serving_latency(hops: int, hit_ratio: float) -> float:
    """Mean score() time of one node through the GNN serving tool."""
    env = Environment()
    gcn = build_gcn(hops=hops)
    info = ModelInfo(
        name=gcn.name,
        input_shape=gcn.input_shape,
        output_shape=gcn.output_shape,
        param_count=gcn.param_count,
        flops_per_point=gcn.flops_per_point,
    )
    costs = ServingCostModel(cal.SERVING_PROFILES["onnx"], info)
    tool = GnnEmbeddedTool(env, costs, gcn, StateStore(env, hit_ratio=hit_ratio))
    times = []

    def driver():
        yield from tool.load()
        for __ in range(50):
            result = yield from tool.score(1)
            times.append(result.service_time)

    env.process(driver())
    env.run()
    return sum(times) / len(times)


def main() -> None:
    # -- 1. real GCN inference ----------------------------------------------
    nodes, degree = 200, 6
    adjacency = random_transaction_graph(nodes, degree, seed=3)
    features = np.random.default_rng(4).random((nodes, 64), dtype=np.float32)
    gcn = build_gcn(initialize=True, seed=0, hops=2, avg_degree=degree)
    probabilities = gcn.predict(features, adjacency)
    print(
        f"scored {nodes} accounts over a {degree}-regular transaction graph; "
        f"mean fraud score {probabilities[:, 1].mean():.3f} "
        f"(random weights — a demo of the real forward pass, not a trained "
        f"detector)"
    )

    # -- 2./3. streaming latency vs hops and cache hit ratio -----------------
    rows = []
    for hops in (1, 2, 3):
        for hit_ratio in (0.99, 0.8, 0.5):
            latency = measure_serving_latency(hops, hit_ratio)
            keys = build_gcn(hops=hops).neighborhood_size
            rows.append(
                (hops, keys, f"{hit_ratio:.0%}", f"{latency * 1e3:.3f}")
            )
    print()
    print(
        format_table(
            ["hops (k)", "keys read/request", "cache hit ratio", "latency (ms)"],
            rows,
            title="GNN serving latency: k-hop state reads vs inference",
        )
    )
    print()
    print(
        "At k=3 the neighborhood fetch dwarfs the matrix math — the reason\n"
        "the paper calls out GNN serving as an open challenge for streaming\n"
        "inference systems (§9)."
    )


if __name__ == "__main__":
    main()
