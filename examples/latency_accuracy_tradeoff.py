"""The latency-accuracy trade-off during model fine-tuning (§2.2.2).

A data scientist tunes the FFNN's hidden width: wider layers mean more
capacity (an accuracy proxy) but slower serving. Crayfish's pitch is to
quantify the *serving* side of that trade-off before training finishes:
each candidate width is registered as a zoo model and benchmarked in the
exact production configuration (Flink + ONNX over Kafka).

Run:  python examples/latency_accuracy_tradeoff.py
"""

from repro.config import ExperimentConfig, WorkloadKind
from repro.core.report import format_table
from repro.core.runner import run_experiment
from repro.nn.layers import Dense, Flatten, ReLU, Softmax
from repro.nn.model import Sequential
from repro.nn.zoo import register_model

WIDTHS = [32, 256, 2048, 8192]
LATENCY_BUDGET_MS = 5.0


def make_builder(width: int):
    def build(initialize: bool = False, seed: int = 0) -> Sequential:
        layers = [Flatten((28, 28)), Dense((784,), width), ReLU((width,))]
        for __ in range(2):
            layers += [Dense((width,), width), ReLU((width,))]
        layers += [Dense((width,), 10), Softmax((10,))]
        model = Sequential(layers, name=f"ffnn_w{width}")
        if initialize:
            model.initialize(seed)
        return model

    return build


def main() -> None:
    rows = []
    for width in WIDTHS:
        name = f"ffnn_w{width}"
        register_model(name, make_builder(width))
        config = ExperimentConfig(
            sps="flink",
            serving="onnx",
            model=name,
            workload=WorkloadKind.CLOSED_LOOP,
            ir=5.0,
            # Long enough that the model-load warm-up (several seconds for
            # the widest candidate) falls inside the discarded 25%.
            duration=16.0,
        )
        result = run_experiment(config)
        params = make_builder(width)(initialize=False).param_count
        latency_ms = result.latency.mean * 1e3
        verdict = "fits budget" if latency_ms <= LATENCY_BUDGET_MS else "over budget"
        rows.append(
            (width, f"{params / 1e3:.0f} K", f"{latency_ms:.2f}", verdict)
        )
    print(
        format_table(
            ["hidden width", "parameters", "latency (ms)", f"vs {LATENCY_BUDGET_MS} ms budget"],
            rows,
            title="Serving latency per candidate architecture (Flink + ONNX)",
        )
    )
    print()
    print(
        "Wider candidates buy capacity (an accuracy proxy) but eventually\n"
        "blow the latency budget — Crayfish quantifies the serving cost of\n"
        "each architecture before the training pipeline commits to one\n"
        "(§2.2.2)."
    )


if __name__ == "__main__":
    main()
