"""Quickstart: benchmark one streaming-inference configuration.

Runs the paper's default setup — Apache Flink serving the FFNN model
through embedded ONNX Runtime, fed through the Kafka broker — first
saturated (sustainable throughput), then at a low rate (inference-
dominated latency), and prints both.

Run:  python examples/quickstart.py
"""

from repro.config import ExperimentConfig, WorkloadKind
from repro.core.report import format_ms, format_rate, format_table
from repro.core.runner import run_experiment


def main() -> None:
    # One configuration = stream processor + serving tool + model (§2.2.1).
    config = ExperimentConfig(
        sps="flink",
        serving="onnx",
        model="ffnn",
        bsz=1,  # data points per CrayfishDataBatch
        mp=1,  # inference workers
        duration=3.0,  # simulated seconds
    )

    # Open loop, input-saturated: how many events/s can the SUT sustain?
    saturated = run_experiment(config.replace(ir=None))

    # Closed loop at 1 event/s: latency dominated by the inference path.
    closed = run_experiment(
        config.replace(workload=WorkloadKind.CLOSED_LOOP, ir=1.0, duration=8.0)
    )

    print(
        format_table(
            ["metric", "value"],
            [
                ("sustainable throughput", f"{format_rate(saturated.throughput)} events/s"),
                ("closed-loop mean latency", f"{format_ms(closed.latency.mean)} ms"),
                ("closed-loop p95 latency", f"{format_ms(closed.latency.p95)} ms"),
                ("batches measured", saturated.latency.count + closed.latency.count),
            ],
            title=f"Crayfish quickstart: {config.label()}",
        )
    )


if __name__ == "__main__":
    main()
