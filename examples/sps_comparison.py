"""Choosing a stream processor for a streaming-inference workload.

The design-space dilemma of §2.2.1: given a model and a serving style,
which stream processor fits the application's constraints? This example
sweeps all four engines against both an embedded and an external serving
tool, and scores each against two application profiles:

- "dashboard": wants p95 latency under 50 ms at a modest 100 events/s;
- "firehose": wants maximum sustainable throughput, latency secondary.

Run:  python examples/sps_comparison.py
"""

from repro.config import ExperimentConfig, SPS_NAMES, WorkloadKind
from repro.core.report import format_ms, format_rate, format_table
from repro.core.runner import run_experiment

TOOLS = ["onnx", "tf_serving"]


def main() -> None:
    rows = []
    best_dashboard = None
    best_firehose = None
    for sps in SPS_NAMES:
        for tool in TOOLS:
            saturated = run_experiment(
                ExperimentConfig(
                    sps=sps, serving=tool, model="ffnn",
                    duration=4.0 if sps == "spark_ss" else 2.0,
                )
            )
            dashboard = run_experiment(
                ExperimentConfig(
                    sps=sps, serving=tool, model="ffnn",
                    workload=WorkloadKind.CLOSED_LOOP, ir=100.0, duration=4.0,
                )
            )
            p95_ms = dashboard.latency.p95 * 1e3
            meets_dashboard = p95_ms < 50.0 and saturated.throughput > 100.0
            rows.append(
                (
                    sps,
                    tool,
                    format_rate(saturated.throughput),
                    format_ms(dashboard.latency.p95),
                    "yes" if meets_dashboard else "no",
                )
            )
            if meets_dashboard and (
                best_dashboard is None or p95_ms < best_dashboard[2]
            ):
                best_dashboard = (sps, tool, p95_ms)
            if best_firehose is None or saturated.throughput > best_firehose[2]:
                best_firehose = (sps, tool, saturated.throughput)

    print(
        format_table(
            ["sps", "tool", "max events/s", "p95 @ 100 ev/s (ms)", "dashboard-ready"],
            rows,
            title="Stream processor comparison for FFNN inference",
        )
    )
    print()
    print(
        f"dashboard pick: {best_dashboard[0]} + {best_dashboard[1]} "
        f"(p95 {best_dashboard[2]:.1f} ms)"
    )
    print(
        f"firehose pick:  {best_firehose[0]} + {best_firehose[1]} "
        f"({best_firehose[2]:,.0f} events/s)"
    )


if __name__ == "__main__":
    main()
