"""A real image-classification pipeline, end to end.

This example uses the parts of the library that actually compute:

1. builds the paper's FFNN Fashion-MNIST classifier with real NumPy
   weights and classifies a batch of synthetic images,
2. exports it to every model format of Table 2 and verifies the ONNX
   round trip returns identical predictions,
3. benchmarks the serving alternatives for exactly this model on Flink
   and prints which tool meets a 1 ms/event service target.

Run:  python examples/image_classification_pipeline.py
"""

import tempfile

import numpy as np

from repro.config import ExperimentConfig
from repro.core.report import format_rate, format_table
from repro.core.runner import run_experiment
from repro.nn.formats import FORMATS, serialized_size
from repro.nn.zoo import get_model

SERVING_TOOLS = ["onnx", "savedmodel", "dl4j", "tf_serving", "torchserve"]
TARGET_RATE = 1000.0  # events/s the application must sustain


def main() -> None:
    # -- 1. real inference -------------------------------------------------
    model = get_model("ffnn", seed=42)
    rng = np.random.default_rng(7)
    images = rng.random((16, 28, 28), dtype=np.float32)
    probabilities = model.predict(images)
    labels = probabilities.argmax(axis=1)
    print(f"classified {len(images)} images; first five labels: {labels[:5]}")
    print(f"probability rows sum to {probabilities.sum(axis=1).round(4)[:3]}...")

    # -- 2. model artifacts -------------------------------------------------
    with tempfile.TemporaryDirectory() as workdir:
        rows = []
        for fmt in sorted(FORMATS):
            size_kb = serialized_size(model, fmt, workdir) / 1024
            rows.append((fmt, f"{size_kb:.0f} KB"))
        print()
        print(format_table(["format", "artifact size"], rows, title="Exported artifacts"))

        onnx = FORMATS["onnx"]
        restored = onnx.loads(onnx.dumps(model))
        assert np.allclose(restored.predict(images), probabilities)
        print("ONNX round trip verified: identical predictions.")

    # -- 3. pick a serving tool for this model -----------------------------
    rows = []
    for tool in SERVING_TOOLS:
        config = ExperimentConfig(
            sps="flink", serving=tool, model="ffnn", duration=2.0, ir=None
        )
        result = run_experiment(config)
        verdict = "meets target" if result.throughput >= TARGET_RATE else "too slow"
        rows.append((tool, format_rate(result.throughput), verdict))
    print()
    print(
        format_table(
            ["serving tool", "events/s", f"vs {TARGET_RATE:.0f} ev/s target"],
            rows,
            title="Serving alternatives on Flink for this classifier",
        )
    )


if __name__ == "__main__":
    main()
